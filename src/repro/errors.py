"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidParameterError(ReproError, ValueError):
    """A caller supplied an invalid parameter (bad k, bad dtype, ...)."""


class ResourceExhaustedError(ReproError, RuntimeError):
    """A simulated hardware resource was exhausted.

    The canonical example from the paper: the per-thread heap top-k needs
    ``k * block_size * key_bytes`` bytes of shared memory, which exceeds the
    48 KiB available per thread block for k > 256 (32-bit keys).
    """


class DeadlineExceededError(ReproError, RuntimeError):
    """A query's latency SLO cannot be (or was not) met.

    Raised by the SLO-aware serving layer when a query is already past its
    deadline at dispatch time — answering it would burn capacity on a
    result the caller has stopped waiting for, so the scheduler sheds it
    with this typed error instead.
    """


class ShutdownError(ReproError, RuntimeError):
    """The serving layer shut down before the query could run.

    Delivered through the futures of queries still pending when a server
    is closed, so callers blocked on ``future.result()`` fail fast with a
    typed error instead of hanging forever.
    """


class UnsupportedQueryError(ReproError, ValueError):
    """The SQL subset parser or engine planner cannot handle a query."""


class SqlSyntaxError(UnsupportedQueryError):
    """The SQL text failed to parse."""


class SimulationError(ReproError, RuntimeError):
    """The SIMT micro-simulator detected an illegal program behaviour.

    Examples: out-of-bounds shared memory access, missing barrier before a
    cross-thread read, or a barrier reached by only part of a thread block.
    """


class FaultError(ReproError, RuntimeError):
    """A simulated hardware fault (base class for the fault-injection layer).

    Faults are *transient* failures of the modeled device — the kind a
    production system must survive through retries and fallbacks, unlike
    :class:`InvalidParameterError` (caller bugs) or
    :class:`ResourceExhaustedError` (hard capacity limits).  ``site``
    names the injection point ("kernel-launch", "pcie-transfer", ...).
    """

    def __init__(self, message: str, site: str = "", detail: str = ""):
        super().__init__(message)
        self.site = site
        self.detail = detail


class DeviceLostError(FaultError):
    """The simulated device dropped off the bus (kernel launch failed)."""


class MemoryCorruptionError(FaultError):
    """A memory read returned corrupted data (simulated bit flip / ECC)."""


class KernelTimeoutError(FaultError):
    """A kernel exceeded the simulated watchdog limit and was killed."""


class TransferError(FaultError):
    """A PCIe staging transfer (host <-> device) failed."""


#: Distinct process exit codes per error class, used by the CLI so scripts
#: can tell failure modes apart.  Codes start at 3: argparse owns 2, and 1
#: is the generic "command reported failure" status.
EXIT_CODES: dict[type, int] = {
    InvalidParameterError: 3,
    SqlSyntaxError: 4,
    UnsupportedQueryError: 5,
    ResourceExhaustedError: 6,
    SimulationError: 7,
    DeviceLostError: 8,
    MemoryCorruptionError: 9,
    KernelTimeoutError: 10,
    TransferError: 11,
    FaultError: 12,
    DeadlineExceededError: 14,
    ShutdownError: 15,
}

#: Fallback exit code for a ReproError subclass not listed above.
GENERIC_ERROR_EXIT_CODE = 13


def exit_code(error: ReproError) -> int:
    """The CLI exit code for ``error`` (most specific class wins)."""
    for cls in type(error).__mro__:
        if cls in EXIT_CODES:
            return EXIT_CODES[cls]
    return GENERIC_ERROR_EXIT_CODE
