"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidParameterError(ReproError, ValueError):
    """A caller supplied an invalid parameter (bad k, bad dtype, ...)."""


class ResourceExhaustedError(ReproError, RuntimeError):
    """A simulated hardware resource was exhausted.

    The canonical example from the paper: the per-thread heap top-k needs
    ``k * block_size * key_bytes`` bytes of shared memory, which exceeds the
    48 KiB available per thread block for k > 256 (32-bit keys).
    """


class UnsupportedQueryError(ReproError, ValueError):
    """The SQL subset parser or engine planner cannot handle a query."""


class SqlSyntaxError(UnsupportedQueryError):
    """The SQL text failed to parse."""


class SimulationError(ReproError, RuntimeError):
    """The SIMT micro-simulator detected an illegal program behaviour.

    Examples: out-of-bounds shared memory access, missing barrier before a
    cross-thread read, or a barrier reached by only part of a thread block.
    """
