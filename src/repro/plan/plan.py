"""The planner's product: a costed, fingerprintable physical plan.

:class:`TopKPlan` is what :meth:`repro.core.planner.TopKPlanner.choose`
returns — the full candidate ranking *and* an explicit :class:`PlanNode`
tree (a :class:`~repro.plan.nodes.Fallback` over the ranked operator
nodes) so every downstream layer speaks the same IR: the resilient
executor walks the fallback alternatives, the serving cache keys on the
tree's fingerprint, EXPLAIN renders it, and spans attach it.

``TopKPlan`` keeps the field layout of the pre-IR ``PlanChoice`` (which is
now an alias), so existing constructors and pattern-matching code keep
working; the tree is synthesized in ``__post_init__`` when not supplied.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.plan.nodes import (
    CPU_FALLBACK,
    PLAN_FORMAT,
    PLAN_VERSION,
    ApproxTopK,
    Batch,
    Fallback,
    PlanNode,
    Scan,
    TopK,
)

#: Algorithms with a fused cross-query batched kernel.  The bitonic
#: network batches elementwise (:func:`repro.core.batched.batched_topk`);
#: the RadiK-style radix select batches per-row pass state
#: (:func:`repro.algorithms.radik.batched_radik_topk`).
BATCHABLE_ALGORITHMS = frozenset({"bitonic", "radik"})

#: Backwards-compatible alias from the bitonic-only batching era.
BATCHABLE_ALGORITHM = "bitonic"


def network_k(k: int) -> int:
    """The padded (power-of-two) width of the bitonic network for ``k``."""
    return 1 << max(0, (k - 1).bit_length())


def request_fingerprint(
    n: int,
    k: int,
    dtype: str,
    profile: str,
    device: str,
    recall_target: float = 1.0,
    max_shards: int = 1,
    calibration_epoch: int = 0,
) -> str:
    """Stable digest of a *plan request* — everything the planner reads.

    This is the serving cache's lookup key: computable before planning,
    and guaranteed to match the fingerprint namespace of plan trees (same
    canonicalization, distinct ``kind``), so two requests collide iff the
    planner would see the identical question.  ``max_shards`` is part of
    the request: a sharding-enabled caller must never collide with a
    single-device one on the same shape.  ``calibration_epoch`` is the
    store epoch of a calibrating planner — a refit that changes any
    correction factor can change the decision, so the epoch must shear
    the cache; at the default 0 (no calibration, or a store that never
    fitted) the field is omitted from the canonical form, keeping every
    pre-calibration digest byte-identical.
    """
    request = {
        "kind": "PlanRequest",
        "n": int(n),
        "k": int(k),
        "dtype": str(dtype),
        "profile": str(profile),
        "device": str(device),
        "recall_target": float(recall_target),
        "max_shards": int(max_shards),
    }
    if int(calibration_epoch) != 0:
        request["calibration_epoch"] = int(calibration_epoch)
    canonical = json.dumps(request, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def operator_node(
    name: str,
    seconds: float | None,
    *,
    n: int = 0,
    k: int = 1,
    dtype: str = "float32",
    source: str = "vector",
    recall_target: float = 1.0,
    approx_config=None,
    expected_recall: float | None = None,
    child: PlanNode | None = None,
) -> PlanNode:
    """One ranked candidate as a plan node (exact TopK or ApproxTopK)."""
    child = child if child is not None else Scan(
        source=source, rows=n, dtype=dtype
    )
    if name == "approx-bucket":
        config_fields = {}
        if approx_config is not None:
            config_fields = {
                "buckets": approx_config.buckets,
                "oversample": approx_config.oversample,
                "delegate_group": approx_config.delegate_group,
                "seed": approx_config.seed,
            }
        return ApproxTopK(
            child=child,
            k=k,
            n=n,
            dtype=dtype,
            recall_target=recall_target,
            expected_recall=expected_recall,
            predicted_seconds=seconds,
            **config_fields,
        )
    return TopK(
        child=child,
        k=k,
        n=n,
        dtype=dtype,
        algorithm=name,
        predicted_seconds=seconds,
    )


def build_fallback(
    names_and_costs,
    *,
    n: int = 0,
    k: int = 1,
    dtype: str = "float32",
    source: str = "vector",
    recall_target: float = 1.0,
    approx_config=None,
    expected_recall: float | None = None,
    terminal_cpu: bool = False,
    child: PlanNode | None = None,
) -> Fallback:
    """An explicit :class:`Fallback` node over ranked (name, cost) pairs.

    ``terminal_cpu`` appends the CPU-heap stage (cost unknown) when it is
    not already last — the resilient executor's "always succeeds" anchor.
    ``child`` is the shared input subtree (defaults to a vector Scan).
    """
    alternatives = [
        operator_node(
            name,
            seconds,
            n=n,
            k=k,
            dtype=dtype,
            source=source,
            recall_target=recall_target,
            approx_config=approx_config if name == "approx-bucket" else None,
            expected_recall=expected_recall if name == "approx-bucket" else None,
            child=child,
        )
        for name, seconds in names_and_costs
    ]
    names = [name for name, _ in names_and_costs]
    if terminal_cpu and CPU_FALLBACK not in names:
        alternatives.append(
            operator_node(
                CPU_FALLBACK, None, n=n, k=k, dtype=dtype, source=source,
                child=child,
            )
        )
    return Fallback(alternatives=tuple(alternatives))


@dataclass(frozen=True)
class TopKPlan:
    """The planner's decision: candidate ranking + explicit plan tree.

    Field layout (through ``expected_recall``) is identical to the pre-IR
    ``PlanChoice`` so existing constructors keep working; ``root`` is the
    typed tree, synthesized from the ranking when not supplied.
    """

    algorithm: str
    predicted_seconds: float
    candidates: tuple[tuple[str, float], ...]
    #: Candidates discarded because they are infeasible for this
    #: configuration (the per-thread heap past its shared-memory limit).
    infeasible: tuple[str, ...] = ()
    #: The caller's minimum acceptable recall; 1.0 means exact-only.
    recall_target: float = 1.0
    #: Configuration of the chosen approximate plan, None for exact plans.
    approx_config: "object | None" = None
    #: Analytic expected recall of the chosen plan (1.0 for exact plans).
    expected_recall: float = 1.0
    #: The planned configuration (0/1 when constructed via the legacy
    #: ranking-only signature — the tree still fingerprints stably).
    n: int = 0
    k: int = 1
    dtype: str = "float32"
    profile: str = "uniform-float"
    device: str = ""
    #: The typed physical-plan tree; synthesized when None.
    root: PlanNode = field(default=None)  # type: ignore[assignment]
    #: Partition count of a sharded winner (1 for single-device plans).
    shards: int = 1

    def __post_init__(self) -> None:
        if self.root is None:
            object.__setattr__(
                self,
                "root",
                build_fallback(
                    self.candidates,
                    n=self.n,
                    k=self.k,
                    dtype=self.dtype,
                    recall_target=self.recall_target,
                    approx_config=self.approx_config,
                    expected_recall=self.expected_recall,
                ),
            )

    @property
    def predicted_ms(self) -> float:
        return self.predicted_seconds * 1e3

    def fallback_chain(self) -> list[str]:
        """Every feasible algorithm, cheapest first — the order a resilient
        executor degrades through when the winner's device fails."""
        return [name for name, _ in self.candidates]

    # -- IR surface -------------------------------------------------------

    def fingerprint(self) -> str:
        """The plan tree's stable identity digest (see
        :meth:`~repro.plan.nodes.PlanNode.fingerprint`)."""
        return self.root.fingerprint()

    def winner(self) -> PlanNode:
        """The chosen operator node (first fallback alternative)."""
        if isinstance(self.root, Fallback) and self.root.alternatives:
            return self.root.alternatives[0]
        return self.root

    def batch_node(self, n: int | None = None, k: int | None = None,
                   dtype: str | None = None) -> Batch:
        """The :class:`Batch` compatibility-group node for this plan.

        Two serving requests may share a fused launch iff their batch
        nodes fingerprint identically.  ``n``/``k``/``dtype`` default to
        the planned configuration; callers holding the actual payload
        (the serving layer) pass theirs explicitly.  The node carries no
        child on purpose: compatibility is *exactly* its own fields — the
        padded ``network_k``, not the literal k, so k=9 and k=12 riders
        share a 16-wide network.
        """
        approx_key = None
        if self.approx_config is not None and self.algorithm == "approx-bucket":
            approx_key = self.approx_config.key()
        return Batch(
            n=int(n if n is not None else self.n),
            dtype=str(dtype if dtype is not None else self.dtype),
            network_k=network_k(int(k if k is not None else self.k)),
            recall_target=float(self.recall_target),
            approx_key=approx_key,
            kernel=(
                self.algorithm
                if self.algorithm in BATCHABLE_ALGORITHMS
                else BATCHABLE_ALGORITHM
            ),
        )

    @property
    def batchable(self) -> bool:
        """Whether a fused batched kernel can serve this plan."""
        return self.algorithm in BATCHABLE_ALGORITHMS

    def to_dict(self) -> dict:
        """JSON-serializable plan for EXPLAIN --json and external tools."""
        return {
            "format": PLAN_FORMAT,
            "version": PLAN_VERSION,
            "algorithm": self.algorithm,
            "predicted_ms": self.predicted_ms,
            "fingerprint": self.fingerprint(),
            "n": self.n,
            "k": self.k,
            "dtype": self.dtype,
            "profile": self.profile,
            "device": self.device,
            "recall_target": self.recall_target,
            "expected_recall": self.expected_recall,
            "shards": self.shards,
            "candidates": [
                {"algorithm": name, "predicted_ms": seconds * 1e3}
                for name, seconds in self.candidates
            ],
            "infeasible": list(self.infeasible),
            "tree": self.root.to_dict(),
        }

    def render(self) -> str:
        """Human-readable plan tree, EXPLAIN-style."""
        header = (
            f"plan {self.fingerprint()}  "
            f"(winner: {self.algorithm}, {self.predicted_ms:.2f} ms predicted)"
        )
        return f"{header}\n{self.root.render()}"


#: Backwards-compatible alias: the pre-IR name for the planner's product.
PlanChoice = TopKPlan
