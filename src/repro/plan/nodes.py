"""The typed physical-plan IR: every layer speaks :class:`PlanNode` trees.

The paper's MapD integration works because top-k is a first-class *plan
operator* the database can compose, cost, and swap (Section 8).  This
module is our equivalent: a small algebra of immutable plan nodes —

* :class:`Scan`       — produce the input rows (table scan or raw vector);
* :class:`Stream`     — an unbounded chunked source with window/decay
  annotations (the continuous-query analogue of Scan);
* :class:`Filter`     — a WHERE predicate over a child's rows;
* :class:`TopK`       — exact top-k selection with a chosen kernel;
* :class:`ApproxTopK` — the bucketed approximate operator with its full
  :class:`~repro.approx.config.ApproxConfig` identity and analytic recall;
* :class:`Batch`      — a fused cross-query launch compatibility group;
* :class:`Fallback`   — ordered alternatives a resilient executor degrades
  through (cheapest first, the last child must always succeed);
* :class:`Merge`      — exact merge of partial/candidate results.

Every node has a stable :meth:`~PlanNode.fingerprint` (a digest of the
node's *identity* — what it computes, never what it is predicted to cost),
cost annotations (``predicted_seconds``), a :meth:`~PlanNode.to_dict` for
EXPLAIN/tracing/external tooling, and a :meth:`~PlanNode.render` ascii
tree.  Fingerprints are the currency of the serving layer: the plan cache
keys bound plans on them and the cross-query batcher groups requests whose
:class:`Batch` nodes fingerprint identically.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field, fields
from typing import ClassVar, Iterator

#: Sentinel algorithm name of the terminal CPU stage in a fallback chain
#: (the hand-rolled priority queue, which has no simulated GPU to lose).
CPU_FALLBACK = "cpu-heap"

#: to_dict() schema tag so external consumers can version-check trees.
PLAN_FORMAT = "repro-plan"
PLAN_VERSION = 1


@dataclass(frozen=True)
class PlanNode:
    """Base class of all physical plan operators.

    Subclasses are frozen dataclasses; fields named in ``_cost_fields``
    are annotations (excluded from the fingerprint), everything else is
    identity.  Children are regular fields holding nodes or node tuples.
    """

    kind: ClassVar[str] = "node"
    _cost_fields: ClassVar[frozenset] = frozenset({"predicted_seconds"})

    @property
    def children(self) -> tuple["PlanNode", ...]:
        out: list[PlanNode] = []
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, PlanNode):
                out.append(value)
            elif isinstance(value, tuple) and value and all(
                isinstance(item, PlanNode) for item in value
            ):
                out.extend(value)
        return tuple(out)

    # -- identity ---------------------------------------------------------

    def identity(self) -> dict:
        """The node's own identity attributes (no children, no costs)."""
        out: dict = {"kind": self.kind}
        for spec in fields(self):
            if spec.name in self._cost_fields:
                continue
            value = getattr(self, spec.name)
            if isinstance(value, PlanNode):
                continue
            if isinstance(value, tuple):
                if value and all(isinstance(item, PlanNode) for item in value):
                    continue
                value = list(value)
            out[spec.name] = value
        return out

    def fingerprint(self) -> str:
        """Stable content digest of the plan's identity subtree.

        Two plans fingerprint identically iff they compute the same thing
        the same way; cost annotations never perturb the digest, so a
        re-costed plan still hits the same cache entry.
        """
        canonical = json.dumps(
            self._identity_tree(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def _identity_tree(self) -> dict:
        tree = self.identity()
        children = self.children
        if children:
            tree["children"] = [child._identity_tree() for child in children]
        return tree

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """Full JSON-serializable tree: identity + costs + children."""
        out = self.identity()
        for name in self._cost_fields:
            value = getattr(self, name, None)
            if value is not None:
                out[name] = value
        out["fingerprint"] = self.fingerprint()
        children = self.children
        if children:
            out["children"] = [child.to_dict() for child in children]
        return out

    # -- traversal --------------------------------------------------------

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: type) -> "PlanNode | None":
        """First node of ``kind`` in pre-order, or None."""
        for node in self.walk():
            if isinstance(node, kind):
                return node
        return None

    # -- rendering --------------------------------------------------------

    def label(self) -> str:
        """One-line human description used by :meth:`render`."""
        attrs = ", ".join(
            f"{name}={value}"
            for name, value in self.identity().items()
            if name != "kind" and value not in (None, ())
        )
        return f"{self.kind}({attrs})" if attrs else self.kind

    def render(self, indent: str = "") -> str:
        """Ascii tree of the plan, EXPLAIN-style."""
        cost = getattr(self, "predicted_seconds", None)
        suffix = f"  [{cost * 1e3:.2f} ms]" if cost is not None else ""
        lines = [f"{indent}{self.label()}{suffix}"]
        children = self.children
        for position, child in enumerate(children):
            last = position == len(children) - 1
            branch = "└─ " if last else "├─ "
            continuation = "   " if last else "│  "
            sub = child.render().splitlines()
            lines.append(f"{indent}{branch}{sub[0]}")
            lines.extend(f"{indent}{continuation}{line}" for line in sub[1:])
        return "\n".join(lines)


@dataclass(frozen=True)
class Scan(PlanNode):
    """Produce the input: a table scan or a caller-supplied vector."""

    kind: ClassVar[str] = "Scan"

    source: str = "vector"
    rows: int = 0
    dtype: str = "float32"
    width_bytes: int | None = None
    predicted_seconds: float | None = None


@dataclass(frozen=True)
class Stream(PlanNode):
    """An unbounded chunked source: the continuous-query analogue of Scan.

    A streaming plan is rooted on one of these instead of a Scan: the
    engine's tick interpreter pulls one ``chunk_rows``-row chunk per tick
    and the selection above it maintains its answer incrementally.  The
    window annotations are *identity*: a sliding-window subscription and
    a decayed subscription over the same source are different plans (they
    compute different answers), so both fingerprint distinctly.

    ``window`` is the sliding window length in rows (0 = unbounded);
    ``decay`` is the per-tick exponential decay factor applied to every
    live row's score (None = no decay).
    """

    kind: ClassVar[str] = "Stream"

    source: str = "stream"
    chunk_rows: int = 0
    dtype: str = "float32"
    window: int = 0
    decay: float | None = None
    predicted_seconds: float | None = None


@dataclass(frozen=True)
class Filter(PlanNode):
    """A WHERE predicate over the child's rows."""

    kind: ClassVar[str] = "Filter"

    child: PlanNode = field(default_factory=Scan)
    predicate: str = ""
    selectivity: float | None = None
    predicted_seconds: float | None = None


@dataclass(frozen=True)
class TopK(PlanNode):
    """Exact top-k selection bound to a named kernel algorithm."""

    kind: ClassVar[str] = "TopK"

    child: PlanNode = field(default_factory=Scan)
    k: int = 1
    n: int = 0
    dtype: str = "float32"
    algorithm: str = "bitonic"
    predicted_seconds: float | None = None


@dataclass(frozen=True)
class ApproxTopK(PlanNode):
    """The bucketed approximate operator with its full configuration."""

    kind: ClassVar[str] = "ApproxTopK"

    child: PlanNode = field(default_factory=Scan)
    k: int = 1
    n: int = 0
    dtype: str = "float32"
    algorithm: str = "approx-bucket"
    buckets: int = 32
    oversample: int = 3
    delegate_group: int = 0
    seed: int | None = None
    recall_target: float = 1.0
    #: Analytic expected recall is an *annotation* — the same configuration
    #: at a different n fingerprints by its identity fields, not this.
    expected_recall: float | None = None
    predicted_seconds: float | None = None

    _cost_fields: ClassVar[frozenset] = frozenset(
        {"predicted_seconds", "expected_recall"}
    )

    def config(self):
        """Materialize the node's :class:`~repro.approx.config.ApproxConfig`."""
        from repro.approx.config import ApproxConfig

        return ApproxConfig(
            buckets=self.buckets,
            oversample=self.oversample,
            delegate_group=self.delegate_group,
            seed=self.seed,
        )


@dataclass(frozen=True)
class Batch(PlanNode):
    """A fused cross-query launch compatibility group.

    Two serving requests may ride one batched launch iff their Batch
    nodes fingerprint identically: same row length, dtype, padded network
    width, recall expectation, and approximate configuration.
    """

    kind: ClassVar[str] = "Batch"

    child: PlanNode = field(default_factory=Scan)
    n: int = 0
    dtype: str = "float32"
    network_k: int = 1
    recall_target: float = 1.0
    approx_key: tuple | None = None
    #: The fused kernel family serving the group ("bitonic" or "radik"):
    #: riders must agree on it — the fused launch *is* that kernel, and
    #: mixing families would change tie-breaking or cost attribution.
    kernel: str = "bitonic"
    predicted_seconds: float | None = None


@dataclass(frozen=True)
class Fallback(PlanNode):
    """Ordered alternatives: try children left to right until one succeeds.

    The resilient executor's degradation order made explicit — cheapest
    first, and when ``terminal`` the last child is the CPU heap, which
    needs no working device at all.
    """

    kind: ClassVar[str] = "Fallback"

    alternatives: tuple[PlanNode, ...] = ()
    predicted_seconds: float | None = None

    def chain(self) -> list[str]:
        """The algorithm names in degradation order."""
        return [
            getattr(node, "algorithm", node.kind)
            for node in self.alternatives
        ]


@dataclass(frozen=True)
class Merge(PlanNode):
    """Exact merge of partial results (multi-GPU shards, bucket candidates).

    The root of a sharded plan: each input is a per-partition
    ``Scan -> TopK`` subtree whose Scan source carries the shard's row
    range (``table[start:stop)``), and the merge reproduces the exact
    global order with deterministic tie-breaking (value descending,
    lower global row index first).
    """

    kind: ClassVar[str] = "Merge"

    inputs: tuple[PlanNode, ...] = ()
    k: int = 1
    algorithm: str = "sharded"
    predicted_seconds: float | None = None

    def shard_ranges(self) -> list[str]:
        """Per-child ``[start:stop)`` row ranges, read from the input
        subtrees' Scan sources (empty for children without one)."""
        ranges: list[str] = []
        for node in self.inputs:
            scan = node.find(Scan)
            if scan is None:
                continue
            match = _SHARD_RANGE.search(scan.source)
            if match is not None:
                ranges.append(match.group(0))
        return ranges

    def label(self) -> str:
        base = super().label()
        ranges = self.shard_ranges()
        if not ranges:
            return base
        return f"{base[:-1]}, shards={len(self.inputs)}, ranges={''.join(ranges)})"


#: ``[start:stop)`` suffix of a partitioned Scan source.
_SHARD_RANGE = re.compile(r"\[\d+:\d+\)$")


#: Node kinds by name, for deserialization and registry dispatch.
NODE_KINDS: dict[str, type] = {
    node.kind: node
    for node in (Scan, Stream, Filter, TopK, ApproxTopK, Batch, Fallback, Merge)
}
