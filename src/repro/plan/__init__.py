"""``repro.plan``: the typed physical-plan IR.

Every layer of the reproduction speaks this IR: the planner emits
:class:`TopKPlan` trees of :class:`PlanNode` operators, the resilient
executor walks explicit :class:`Fallback` nodes, the engine interprets
query plans, the serving cache keys bound plans on
:meth:`~PlanNode.fingerprint`, the batcher groups on
fingerprint-compatible :class:`Batch` nodes, and EXPLAIN renders
:meth:`~PlanNode.render` trees (``to_dict`` for external tooling).
"""

from repro.plan.bind import BoundPlan, bind_plan
from repro.plan.nodes import (
    CPU_FALLBACK,
    NODE_KINDS,
    PLAN_FORMAT,
    PLAN_VERSION,
    ApproxTopK,
    Batch,
    Fallback,
    Filter,
    Merge,
    PlanNode,
    Scan,
    Stream,
    TopK,
)
from repro.plan.plan import (
    BATCHABLE_ALGORITHM,
    BATCHABLE_ALGORITHMS,
    PlanChoice,
    TopKPlan,
    build_fallback,
    network_k,
    operator_node,
    request_fingerprint,
)

__all__ = [
    "BATCHABLE_ALGORITHM",
    "BATCHABLE_ALGORITHMS",
    "CPU_FALLBACK",
    "NODE_KINDS",
    "PLAN_FORMAT",
    "PLAN_VERSION",
    "ApproxTopK",
    "Batch",
    "BoundPlan",
    "Fallback",
    "Filter",
    "Merge",
    "PlanChoice",
    "PlanNode",
    "Scan",
    "Stream",
    "TopK",
    "TopKPlan",
    "bind_plan",
    "build_fallback",
    "network_k",
    "operator_node",
    "request_fingerprint",
]
