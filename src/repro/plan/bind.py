"""Binding: turn a plan tree into a ready-to-run executable.

A :class:`~repro.plan.plan.TopKPlan` is pure data; :func:`bind_plan`
resolves its winning operator node to an instantiated kernel through the
algorithm registry's node dispatch
(:func:`repro.algorithms.registry.create_for_node`) and wraps both in a
:class:`BoundPlan` — the unit the serving plan cache stores.  A cache hit
hands back the *bound* plan, so the hot path skips re-planning, registry
lookup, kernel construction, and parameter re-validation entirely: the
payload goes straight into the prepared runner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import TopKAlgorithm, TopKResult
from repro.gpu.device import DeviceSpec, get_device
from repro.plan.plan import TopKPlan


@dataclass
class BoundPlan:
    """A plan plus its instantiated winning kernel.

    ``run`` trusts the caller to supply a payload matching the bound shape
    (same n, k, dtype the plan was built for) — the serving layer
    validates once at submit time, so per-hit re-validation is skipped.
    """

    plan: TopKPlan
    runner: TopKAlgorithm
    device: DeviceSpec

    def run(
        self,
        data: np.ndarray,
        k: int | None = None,
        model_n: int | None = None,
    ) -> TopKResult:
        """Execute the bound winner on ``data`` (defaults to the plan's k)."""
        return self.runner.run(
            data, self.plan.k if k is None else k, model_n=model_n
        )

    def fingerprint(self) -> str:
        return self.plan.fingerprint()


def bind_plan(
    plan: TopKPlan,
    device: DeviceSpec | None = None,
    flags=None,
) -> BoundPlan:
    """Resolve the plan's winning operator node to a kernel instance."""
    from repro.algorithms.registry import create_for_node

    device = device or get_device()
    runner = create_for_node(plan.winner(), device, flags=flags)
    return BoundPlan(plan=plan, runner=runner, device=device)
