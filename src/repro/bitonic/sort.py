"""Full bitonic sort (Section 2.2 background).

The textbook massively parallel sorting algorithm: log2(n) phases, phase p
performing p compare-exchange steps, O(n log^2 n) comparisons.  The paper's
background explains why modern GPU sorts abandoned it for radix sort — it
moves every element through every step — and the duality argument of
Figure 1 positions bitonic *top-k* as its priority-queue counterpart.

We implement it both as a standalone sorter (used by tests as an
independent oracle for the network conventions) and as a
:class:`TopKAlgorithm` whose trace quantifies the background claim: even
with the shared-memory optimization of Peters et al., a full bitonic sort
reads global memory once per *phase group* and loses to the 4-pass radix
sort for large n.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import TopKAlgorithm, TopKResult, validate_topk_args
from repro.bitonic.network import full_sort_steps
from repro.bitonic.operators import apply_step
from repro.errors import InvalidParameterError
from repro.gpu.banks import single_step_conflict_factor
from repro.gpu.counters import ExecutionTrace

#: Elements that fit one thread block's shared memory tile (16 KiB of
#: 4-byte keys), bounding which steps can run in shared memory.
SHARED_TILE_ELEMENTS = 4096


def bitonic_sort(
    values: np.ndarray, payload: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray | None]:
    """Ascending bitonic sort (out of place); pads to a power of two."""
    n = len(values)
    if n == 0:
        return values.copy(), payload.copy() if payload is not None else None
    padded_n = 1 << max(0, (n - 1).bit_length())
    if values.dtype.kind == "f":
        sentinel = np.inf
    else:
        sentinel = np.iinfo(values.dtype).max
    working = np.full(padded_n, sentinel, dtype=values.dtype)
    working[:n] = values
    working_payload = np.full(padded_n, -1, dtype=np.int64)
    working_payload[:n] = payload if payload is not None else np.arange(n)
    for step in full_sort_steps(padded_n):
        apply_step(working, step, working_payload)
    # Padding sentinels are maximal and sort to the end.
    result = working[:n]
    result_payload = working_payload[:n]
    if payload is None:
        return result.copy(), result_payload.copy()
    return result.copy(), result_payload.copy()


class BitonicSortTopK(TopKAlgorithm):
    """Top-k by fully bitonic-sorting the input — the Section 2.2 baseline.

    Cost accounting follows the Peters et al. structure: steps whose
    comparison distance fits a shared-memory tile run there (grouped, one
    global round trip per group); the large-distance steps of the later
    phases must touch global memory individually — the O(n log^2 n) global
    traffic that makes full bitonic sort uncompetitive with radix sort.
    """

    name = "bitonic-sort"

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        validate_topk_args(data, k)
        n = len(data)
        model = model_n or n
        sorted_values, permutation = bitonic_sort(data)
        values = sorted_values[::-1][:k].copy()
        indices = permutation[::-1][:k].copy()

        trace = self._build_trace(model, data.dtype.itemsize)
        return self._result(values, indices, trace, k, n, model_n)

    def _build_trace(self, model_n: int, width: int) -> ExecutionTrace:
        trace = ExecutionTrace()
        padded_n = 1 << max(0, (model_n - 1).bit_length())
        data_bytes = float(model_n) * width
        tile_distance = SHARED_TILE_ELEMENTS // 2
        global_steps = 0
        shared_groups = 0
        shared_steps = 0
        for step in full_sort_steps(padded_n):
            if step.inc < tile_distance:
                shared_steps += 1
            else:
                global_steps += 1
        # Steps group into multi-step kernels (Peters et al.): each group
        # costs one global round trip.  Small-distance steps additionally
        # run inside a shared tile; large-distance steps group through
        # strided virtual tiles but stay global-bandwidth bound.
        steps_per_group = max(1, int(math.log2(SHARED_TILE_ELEMENTS)))
        shared_groups = math.ceil(shared_steps / steps_per_group)
        global_groups = math.ceil(global_steps / steps_per_group)
        for index in range(shared_groups):
            kernel = trace.launch(f"bitonic-sort-shared-{index}")
            kernel.add_global_read(data_bytes)
            kernel.add_global_write(data_bytes)
            kernel.add_shared(
                data_bytes * 2 * steps_per_group,
                single_step_conflict_factor(2),
            )
        for index in range(global_groups):
            kernel = trace.launch(f"bitonic-sort-global-{index}")
            kernel.add_global_read(data_bytes)
            kernel.add_global_write(data_bytes)
        trace.notes["global_steps"] = global_steps
        trace.notes["shared_groups"] = shared_groups
        trace.notes["global_groups"] = global_groups
        return trace


def kth_largest(
    data: np.ndarray, k: int, algorithm: str = "radix-select"
) -> float:
    """The k-selection problem of Section 2.3: the k-th largest value.

    Solved through any registered top-k algorithm (radix select by
    default, mirroring the GGKS lineage); the k-th largest is the last
    entry of the top-k.
    """
    from repro.algorithms.registry import create

    if k <= 0 or k > len(data):
        raise InvalidParameterError(f"k = {k} must be in [1, {len(data)}]")
    result = create(algorithm).run(np.asarray(data), k)
    return result.values.min()
