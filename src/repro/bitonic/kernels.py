"""Kernel-level cost accounting for bitonic top-k.

Builds the :class:`~repro.gpu.counters.ExecutionTrace` that the equivalent
CUDA kernels would generate for a given (n, k, key width, optimization
flags), following the kernel decomposition of Section 4.3:

* **naive** — one kernel per network step, all traffic in global memory;
* **shared memory** — one kernel per operator (local sort / merge /
  rebuild); each operator reads and writes global memory once and runs its
  steps in shared memory;
* **fused** — the SortReducer kernel (local sort + ``log2(B)`` in-kernel
  merge/rebuild phases) followed by BitonicReducer kernels (``log2(B)``
  rebuild/merge phases each), every kernel reducing the data by the
  elements-per-thread factor B.

Shared-memory traffic is conflict-weighted per round using the planner
(:mod:`repro.bitonic.plan`) and the bank model (:mod:`repro.gpu.banks`);
the in-kernel merge reads its partner runs through shared memory at
distance k.  Occupancy (shared memory and register pressure as functions
of B) derates global bandwidth, which is what makes B = 64 a detriment in
the Figure 8 sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bitonic.network import local_sort_steps, rebuild_steps
from repro.bitonic.optimizations import OptimizationFlags
from repro.bitonic.plan import plan_rounds
from repro.errors import InvalidParameterError
from repro.gpu.banks import single_step_conflict_factor
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec
from repro.gpu.occupancy import BlockResources, occupancy

#: Register overhead of the kernels beyond the B element registers.
_REGISTER_OVERHEAD = 24


def _merge_conflict_factor(k: int) -> float:
    """delta for the in-kernel merge access at comparison distance k."""
    return single_step_conflict_factor(max(k, 1))


def kernel_block_resources(
    flags: OptimizationFlags, word: int, device: DeviceSpec
) -> BlockResources:
    """Thread-block shape and resource usage of the fused kernels.

    Blocks of 256 threads each hold ``B * 256`` elements in shared memory
    (plus the padding column when enabled); the block size shrinks when B
    is large enough that a full block would exceed the 48 KiB limit.
    """
    elements = flags.elements_per_thread
    threads = 256
    while threads > device.warp_size:
        shared = elements * threads * word
        if flags.padding:
            shared += shared // device.shared_memory_banks
        if shared <= device.shared_memory_per_block:
            break
        threads //= 2
    shared = elements * threads * word
    if flags.padding:
        shared += shared // device.shared_memory_banks
    registers = elements * max(1, word // 4) + _REGISTER_OVERHEAD
    return BlockResources(
        threads=threads,
        shared_memory_bytes=shared,
        registers_per_thread=min(registers, device.registers_per_thread_limit),
    )


def _kernel_occupancy(
    flags: OptimizationFlags, word: int, device: DeviceSpec
) -> float:
    if not flags.kernel_fusion:
        return 1.0
    resources = kernel_block_resources(flags, word, device)
    return occupancy(device, resources)


@dataclass
class _SharedAccumulator:
    """Accumulates conflict-weighted shared words per kernel-input element."""

    words: float = 0.0
    weighted: float = 0.0

    def add_rounds(self, rounds, live_fraction: float) -> None:
        for round_ in rounds:
            self.words += round_.words_per_element * live_fraction
            self.weighted += (
                round_.words_per_element * round_.conflict_factor * live_fraction
            )

    def add(self, words: float, conflict_factor: float = 1.0) -> None:
        self.words += words
        self.weighted += words * conflict_factor


def _reduction_phases(
    shared: _SharedAccumulator,
    k: int,
    flags: OptimizationFlags,
    num_merges: int,
    start_with_rebuild: bool,
) -> None:
    """Account the in-kernel merge/rebuild phases of a fused kernel.

    ``live`` tracks the fraction of the kernel's input still in flight;
    each merge halves it.  Without partition reassignment the per-thread
    element count shrinks with the live data, capping how many steps a
    round can combine.
    """
    live = 1.0
    merge_delta = _merge_conflict_factor(k)
    for phase in range(num_merges):
        if start_with_rebuild or phase > 0:
            if flags.partition_reassignment:
                capacity = flags.elements_per_thread
            else:
                capacity = max(
                    2, int(flags.elements_per_thread * live)
                )
            rounds = plan_rounds(rebuild_steps(k), flags, elements_per_thread=capacity)
            shared.add_rounds(rounds, live)
        # Merge: read the live elements, write the surviving half.
        shared.add(1.5 * live, merge_delta)
        live /= 2.0
    if not start_with_rebuild:
        # SortReducer ends on a merge; the trailing rebuild belongs to the
        # next kernel, which starts with one.
        pass


def _fused_kernel_counters(
    trace: ExecutionTrace,
    name: str,
    input_elements: float,
    reduction_factor: int,
    k: int,
    word: int,
    flags: OptimizationFlags,
    device: DeviceSpec,
    is_sort_reducer: bool,
) -> float:
    """Add one fused kernel to the trace; returns its output element count."""
    counters = trace.launch(name)
    counters.occupancy = _kernel_occupancy(flags, word, device)
    output_elements = input_elements / reduction_factor
    counters.add_global_read(input_elements * word)
    counters.add_global_write(output_elements * word)

    shared = _SharedAccumulator()
    # Staging: every input element is written into shared memory once and
    # every surviving element is read back out for the global store.
    shared.add(1.0)
    shared.add(1.0 / reduction_factor)
    num_merges = int(math.log2(reduction_factor))
    if is_sort_reducer:
        shared.add_rounds(plan_rounds(local_sort_steps(k), flags), 1.0)
        _reduction_phases(shared, k, flags, num_merges, start_with_rebuild=False)
    else:
        _reduction_phases(shared, k, flags, num_merges, start_with_rebuild=True)
    counters.add_shared(shared.words * input_elements * word)
    # add_shared() tracks raw bytes; overwrite the weighted figure with the
    # accumulator's conflict-aware total.
    counters.shared_bytes_weighted = shared.weighted * input_elements * word
    return output_elements


def _unfused_trace(
    n: int, k: int, word: int, flags: OptimizationFlags, trace: ExecutionTrace
) -> None:
    """Per-step (naive) or per-operator (shared memory) kernel accounting."""
    sort_steps = local_sort_steps(k)
    if flags.shared_memory:
        counters = trace.launch("local-sort")
        counters.add_global_read(n * word)
        counters.add_global_write(n * word)
        shared = _SharedAccumulator()
        shared.add_rounds(plan_rounds(sort_steps, flags), 1.0)
        counters.add_shared(shared.words * n * word)
        counters.shared_bytes_weighted = shared.weighted * n * word
    else:
        for index, step in enumerate(sort_steps):
            counters = trace.launch(f"local-sort-step-{index}")
            counters.add_global_read(n * word)
            counters.add_global_write(n * word)

    live = float(n)
    while live > k:
        merge = trace.launch("merge")
        merge.add_global_read(live * word)
        merge.add_global_write(live / 2 * word)
        live /= 2
        if live <= k:
            break
        if flags.shared_memory:
            rebuild = trace.launch("rebuild")
            rebuild.add_global_read(live * word)
            rebuild.add_global_write(live * word)
            shared = _SharedAccumulator()
            shared.add_rounds(plan_rounds(rebuild_steps(k), flags), 1.0)
            rebuild.add_shared(shared.words * live * word)
            rebuild.shared_bytes_weighted = shared.weighted * live * word
        else:
            for index, step in enumerate(rebuild_steps(k)):
                counters = trace.launch(f"rebuild-step-{index}")
                counters.add_global_read(live * word)
                counters.add_global_write(live * word)


def build_trace(
    n: int,
    k: int,
    word: int,
    flags: OptimizationFlags,
    device: DeviceSpec,
) -> ExecutionTrace:
    """Execution trace of a full bitonic top-k of n elements.

    ``n`` may be any positive count; the network operates on the next power
    of two (padding with sentinel values adds no memory traffic beyond the
    real elements, so we model traffic on ``n`` directly).
    """
    if n <= 0 or k <= 0:
        raise InvalidParameterError("n and k must be positive")
    trace = ExecutionTrace()
    if k >= n:
        counters = trace.launch("passthrough-sort")
        counters.add_global_read(n * word)
        counters.add_global_write(n * word)
        return trace

    if not flags.kernel_fusion:
        _unfused_trace(n, k, word, flags, trace)
        return trace

    reduction_rounds = max(1, math.ceil(math.log2(n / k)))
    per_kernel = int(math.log2(flags.elements_per_thread))
    live = float(n)
    rounds_done = 0
    kernel_index = 0
    while rounds_done < reduction_rounds:
        rounds_now = min(per_kernel, reduction_rounds - rounds_done)
        is_first = kernel_index == 0
        name = "SortReducer" if is_first else f"BitonicReducer-{kernel_index}"
        live = _fused_kernel_counters(
            trace,
            name,
            live,
            1 << rounds_now,
            k,
            word,
            flags,
            device,
            is_sort_reducer=is_first,
        )
        rounds_done += rounds_now
        kernel_index += 1
    trace.notes["kernels"] = kernel_index
    trace.notes["elements_per_thread"] = flags.elements_per_thread
    return trace


def memory_overhead_bytes(n: int, word: int, flags: OptimizationFlags) -> int:
    """Auxiliary global buffer the algorithm needs (Section 4.3 discussion).

    Out-of-place bitonic top-k ping-pongs through a buffer of size
    ``n / B`` — far below the full-size scratch of sort and the selection
    methods.
    """
    if not flags.kernel_fusion:
        return n * word
    return (n // flags.elements_per_thread) * word
