"""Vectorized executors for the three bitonic top-k operators.

These run the step sequences of :mod:`repro.bitonic.network` with numpy —
one array operation per massively parallel step, which is the same dataflow
the GPU executes (each element of the numpy expression corresponds to one
thread's compare-exchange).

Conventions (matching the paper's Algorithms 2-4):

* a step compares ``L[i]`` with ``L[i + inc]``; index ``i`` enumerates the
  lower partner of each pair;
* ``reverse = ((direction_period & i) == 0)``; ``swap = reverse XOR
  (L[i] < L[i + inc])``.  With ``reverse`` false the larger value moves to
  the *lower* index (descending run), with ``reverse`` true to the higher
  index (ascending run).  Local sort therefore produces runs alternating
  ascending-then-descending, which is exactly what the merge needs;
* the merge compares ``L[i]`` and ``L[i + k]`` for each pair of adjacent
  length-k runs and keeps the maxima, compacted, which form a *bitonic*
  sequence containing the top-k of the pair — the key insight of
  Section 3.2.

All operators optionally carry a payload array (row ids or values) through
the same exchanges, supporting the key+value experiments of Section 6.6.
"""

from __future__ import annotations

import numpy as np

from repro.bitonic.network import (
    Step,
    local_sort_steps,
    rebuild_steps,
    validate_power_of_two,
)
from repro.errors import InvalidParameterError


def apply_step(
    values: np.ndarray, step: Step, payload: np.ndarray | None = None
) -> None:
    """Apply one compare-exchange step in place."""
    n = len(values)
    if n % (2 * step.inc) != 0:
        raise InvalidParameterError(
            f"array length {n} is not a multiple of the step block {2 * step.inc}"
        )
    t = np.arange(n // 2)
    low = t & (step.inc - 1)
    i = (t << 1) - low
    partner = i + step.inc
    reverse = (i & step.direction_period) == 0
    left = values[i]
    right = values[partner]
    swap = np.logical_xor(reverse, left < right)
    new_left = np.where(swap, right, left)
    new_right = np.where(swap, left, right)
    values[i] = new_left
    values[partner] = new_right
    if payload is not None:
        left_payload = payload[i]
        right_payload = payload[partner]
        payload[i] = np.where(swap, right_payload, left_payload)
        payload[partner] = np.where(swap, left_payload, right_payload)


def local_sort(
    values: np.ndarray, k: int, payload: np.ndarray | None = None
) -> None:
    """Sort ``values`` in place into alternating runs of length ``k``."""
    if len(values) % max(k, 2) != 0:
        raise InvalidParameterError("array length must be a multiple of k")
    for step in local_sort_steps(k):
        apply_step(values, step, payload)


def merge(
    values: np.ndarray, k: int, payload: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray | None]:
    """Merge adjacent run pairs, keeping the larger half of each pair.

    Input: alternating sorted runs of length k (2m runs).  Output: m
    length-k *bitonic* sequences, each containing the top-k of its pair.
    Returns new (values, payload) arrays of half the length.
    """
    validate_power_of_two(k, "k")
    n = len(values)
    if n % (2 * k) != 0:
        raise InvalidParameterError(
            f"array length {n} is not a multiple of a run pair (2k = {2 * k})"
        )
    pairs = values.reshape(-1, 2, k)
    first = pairs[:, 0, :]
    second = pairs[:, 1, :]
    keep_first = first >= second
    merged = np.where(keep_first, first, second).reshape(-1)
    merged_payload = None
    if payload is not None:
        payload_pairs = payload.reshape(-1, 2, k)
        merged_payload = np.where(
            keep_first, payload_pairs[:, 0, :], payload_pairs[:, 1, :]
        ).reshape(-1)
    return merged, merged_payload


def rebuild(
    values: np.ndarray, k: int, payload: np.ndarray | None = None
) -> None:
    """Re-sort length-k bitonic sequences into alternating runs, in place."""
    if len(values) % max(k, 2) != 0 and k > 1:
        raise InvalidParameterError("array length must be a multiple of k")
    for step in rebuild_steps(k):
        apply_step(values, step, payload)


def reduce_topk(
    values: np.ndarray, k: int, payload: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray | None]:
    """The full operator pipeline: local sort, then merge+rebuild to k elements.

    ``values`` is modified and consumed; the returned arrays hold the top-k
    (sorted descending) and the corresponding payload entries.
    """
    validate_power_of_two(k, "k")
    n = len(values)
    validate_power_of_two(n, "n")
    if k > n:
        raise InvalidParameterError("k cannot exceed the (padded) input size")
    if k == n:
        order = np.argsort(values, kind="stable")[::-1]
        return values[order], payload[order] if payload is not None else None
    if k == 1:
        # A run of length 1 is trivially sorted; the pipeline degenerates to
        # a max reduction, which we express as repeated pairwise merges.
        while len(values) > 1:
            values, payload = merge(values, 1, payload)
        return values, payload
    local_sort(values, k, payload)
    while len(values) > k:
        values, payload = merge(values, k, payload)
        if len(values) > k:
            rebuild(values, k, payload)
    # The final k survivors form one bitonic sequence; sort them descending.
    order = np.argsort(values, kind="stable")[::-1]
    return values[order], payload[order] if payload is not None else None
