"""Optimization switches for bitonic top-k (Section 4.3).

Each flag corresponds to one optimization the paper introduces, in order.
:data:`ABLATION_LADDER` lists the cumulative presets matching the paper's
runtime progression for top-32 over 2^29 floats:

    521 ms  -> 122 ms -> 48.15 ms -> 33.7 ms -> 22.3 ms -> 17.8 ms
    -> 16 ms -> 15.4 ms

(naive, +shared memory, +kernel fusion, +combined steps, +padding,
+16 elements per thread, +chunk permutation, +partition reassignment).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.bitonic.network import is_power_of_two
from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class OptimizationFlags:
    """Which of the Section 4.3 optimizations are enabled.

    * ``shared_memory`` — run each operator's steps in shared memory,
      touching global memory once per operator instead of once per step.
    * ``kernel_fusion`` — fuse local sort + merges + rebuilds into the
      SortReducer / BitonicReducer kernels, eliminating intermediate global
      traffic and launch overhead.
    * ``combined_steps`` — have each thread keep ``elements_per_thread``
      values in registers and execute several network steps per shared
      read/write round.  Without padding, only step groups whose access
      pattern stays near-conflict-free are combined.
    * ``padding`` — pad the shared array (one word per bank row) to break
      the chunk-access conflicts, enabling combining of every group and
      larger ``elements_per_thread``.
    * ``chunk_permutation`` — stagger/relocate per-thread chunks to remove
      the conflicts that padding cannot (combined steps with comparison
      distance above the chunk), per Figure 10.
    * ``partition_reassignment`` — after each in-kernel merge halves the
      live data, reassign it to half the threads so combined steps keep
      their full depth.
    * ``elements_per_thread`` — the B of Figure 8 (8 before padding,
      16 at full optimization).
    """

    shared_memory: bool = True
    kernel_fusion: bool = True
    combined_steps: bool = True
    padding: bool = True
    chunk_permutation: bool = True
    partition_reassignment: bool = True
    elements_per_thread: int = 16

    def __post_init__(self) -> None:
        if not is_power_of_two(self.elements_per_thread):
            raise InvalidParameterError("elements_per_thread must be a power of two")
        if not 2 <= self.elements_per_thread <= 64:
            raise InvalidParameterError(
                "elements_per_thread must be between 2 and 64"
            )
        if self.kernel_fusion and not self.shared_memory:
            raise InvalidParameterError(
                "kernel fusion requires operating in shared memory"
            )
        if self.combined_steps and not self.kernel_fusion:
            raise InvalidParameterError("combined steps require fused kernels")
        if self.padding and not self.combined_steps:
            raise InvalidParameterError(
                "padding only matters once steps are combined"
            )
        if self.chunk_permutation and not self.padding:
            raise InvalidParameterError(
                "chunk permutation builds on the padded layout"
            )

    def with_elements_per_thread(self, elements: int) -> "OptimizationFlags":
        """Copy with a different B (the Figure 8 sweep)."""
        return replace(self, elements_per_thread=elements)


#: All optimizations enabled — the configuration every evaluation figure uses.
FULL = OptimizationFlags()

#: The naive baseline: one kernel per network step, all traffic global.
NAIVE = OptimizationFlags(
    shared_memory=False,
    kernel_fusion=False,
    combined_steps=False,
    padding=False,
    chunk_permutation=False,
    partition_reassignment=False,
    elements_per_thread=2,
)

#: Cumulative presets of the Section 4.3 ablation, in paper order.
ABLATION_LADDER: list[tuple[str, OptimizationFlags]] = [
    ("naive", NAIVE),
    (
        "+shared memory",
        OptimizationFlags(
            shared_memory=True,
            kernel_fusion=False,
            combined_steps=False,
            padding=False,
            chunk_permutation=False,
            partition_reassignment=False,
            elements_per_thread=2,
        ),
    ),
    (
        "+kernel fusion",
        OptimizationFlags(
            combined_steps=False,
            padding=False,
            chunk_permutation=False,
            partition_reassignment=False,
            elements_per_thread=8,
        ),
    ),
    (
        "+combined steps",
        OptimizationFlags(
            padding=False,
            chunk_permutation=False,
            partition_reassignment=False,
            elements_per_thread=8,
        ),
    ),
    (
        "+padding",
        OptimizationFlags(
            chunk_permutation=False,
            partition_reassignment=False,
            elements_per_thread=8,
        ),
    ),
    (
        "+B=16",
        OptimizationFlags(
            chunk_permutation=False,
            partition_reassignment=False,
            elements_per_thread=16,
        ),
    ),
    (
        "+chunk permutation",
        OptimizationFlags(partition_reassignment=False, elements_per_thread=16),
    ),
    ("+partition reassignment", FULL),
]

#: Paper-reported runtimes (ms) for the ladder above (top-32, 2^29 floats).
PAPER_LADDER_MS = [521.0, 122.0, 48.15, 33.7, 22.3, 17.8, 16.0, 15.4]
