"""Bitonic top-k — the paper's primary contribution.

The three operators (local sort / merge / rebuild), the fused
SortReducer/BitonicReducer kernel cost model, the Section 4.3 optimization
ladder, and the CPU adaptation of Appendix C.
"""

from repro.bitonic.network import (
    Step,
    full_sort_steps,
    local_sort_steps,
    rebuild_steps,
    topk_total_comparisons,
)
from repro.bitonic.operators import apply_step, local_sort, merge, rebuild, reduce_topk
from repro.bitonic.optimizations import (
    ABLATION_LADDER,
    FULL,
    NAIVE,
    PAPER_LADDER_MS,
    OptimizationFlags,
)
from repro.bitonic.plan import Round, plan_rounds
from repro.bitonic.sort import BitonicSortTopK, bitonic_sort, kth_largest
from repro.bitonic.topk import BitonicTopK

__all__ = [
    "Step",
    "full_sort_steps",
    "local_sort_steps",
    "rebuild_steps",
    "topk_total_comparisons",
    "apply_step",
    "local_sort",
    "merge",
    "rebuild",
    "reduce_topk",
    "ABLATION_LADDER",
    "FULL",
    "NAIVE",
    "PAPER_LADDER_MS",
    "OptimizationFlags",
    "Round",
    "BitonicSortTopK",
    "bitonic_sort",
    "kth_largest",
    "plan_rounds",
    "BitonicTopK",
]
