"""Bitonic top-k — the paper's contribution, as a :class:`TopKAlgorithm`.

Functionally the algorithm pads the input to a power of two with sentinel
minimum values, runs the local-sort / merge / rebuild reduction
(:mod:`repro.bitonic.operators`), and returns the top-k values with their
row indices.  The execution trace models the SortReducer / BitonicReducer
kernel pipeline (:mod:`repro.bitonic.kernels`) under the configured
optimization flags.

The key robustness property of Section 6.4 falls out of the construction:
the network's comparison sequence is data-independent, so the trace — and
therefore the simulated runtime — is identical for every input
distribution.
"""

from __future__ import annotations

import numpy as np

from repro import observability as obs
from repro.algorithms.base import TopKAlgorithm, TopKResult, validate_topk_args
from repro.bitonic.kernels import build_trace, memory_overhead_bytes
from repro.bitonic.operators import reduce_topk
from repro.bitonic.optimizations import FULL, OptimizationFlags
from repro.errors import InvalidParameterError
from repro.gpu.device import DeviceSpec


def _sentinel(dtype: np.dtype):
    """The minimum representable value of a dtype, used to pad the input."""
    if dtype.kind == "f":
        return -np.inf
    return np.iinfo(dtype).min


def _next_power_of_two(value: int) -> int:
    return 1 << max(0, (value - 1).bit_length())


def repair_padded_indices(
    data: np.ndarray, values: np.ndarray, indices: np.ndarray, n: int
) -> np.ndarray:
    """Repair result indices that point at padding slots.

    A padding sentinel can only reach the top-k when real elements share the
    dtype's minimum value, in which case the returned *values* are already
    correct and we only need to point the indices at unused real rows
    holding that value.  (With NaN payloads the comparison network can also
    carry a sentinel past real values — ordering is undefined there, so any
    unused real row is an acceptable substitute.)

    Shared by the single-row :class:`BitonicTopK` and the batched kernel in
    :mod:`repro.core.batched`, which keeps their tie-breaking bit-identical.
    """
    broken = indices >= n
    if not broken.any():
        return indices
    minimum = values[broken][0]
    used = set(indices[~broken].tolist())
    replacements = [
        row for row in np.flatnonzero(data == minimum) if row not in used
    ]
    slots = np.flatnonzero(broken)
    if len(replacements) < len(slots):
        # Only reachable when NaNs scrambled the network: top up with the
        # lowest real rows not already part of the result.
        taken = used | set(replacements)
        extras = (row for row in range(n) if row not in taken)
        while len(replacements) < len(slots):
            replacements.append(next(extras))
    fixed = indices.copy()
    fixed[slots] = replacements[: len(slots)]
    return fixed


class BitonicTopK(TopKAlgorithm):
    """The paper's bitonic top-k algorithm (Sections 3.2 and 4.3)."""

    name = "bitonic"

    #: The paper evaluates k up to 1024; shared memory bounds k at twice the
    #: maximum thread-block size (Section 4.3, "Operating in Shared Memory").
    max_k = 2048

    def __init__(
        self,
        device: DeviceSpec | None = None,
        flags: OptimizationFlags = FULL,
    ):
        super().__init__(device)
        self.flags = flags

    def supports(self, n: int, k: int, dtype: np.dtype) -> bool:
        return 1 <= k <= self.max_k

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        validate_topk_args(data, k)
        n = len(data)
        if not self.supports(n, k, data.dtype):
            raise InvalidParameterError(
                f"bitonic top-k supports k <= {self.max_k}, got {k}"
            )
        network_k = _next_power_of_two(k)
        padded_n = max(_next_power_of_two(n), network_k)
        working = np.full(padded_n, _sentinel(data.dtype), dtype=data.dtype)
        working[:n] = data
        payload = np.arange(padded_n, dtype=np.int64)
        with obs.span(
            "phase:bitonic-reduce",
            category="phase",
            network_k=network_k,
            padded_n=padded_n,
        ):
            top_values, top_payload = reduce_topk(working, network_k, payload)
        values = top_values[:k].copy()
        indices = repair_padded_indices(data, values, top_payload[:k].copy(), n)

        trace = build_trace(
            model_n or n, network_k, data.dtype.itemsize, self.flags, self.device
        )
        trace.notes["network_k"] = network_k
        return self._result(values, indices, trace, k, n, model_n)

    def memory_overhead(self, n: int, dtype: np.dtype) -> int:
        """Auxiliary buffer bytes (n/B words — Section 4.3 discussion)."""
        return memory_overhead_bytes(n, np.dtype(dtype).itemsize, self.flags)
