"""Bitonic top-k as micro kernels for the SIMT executor.

These are the thread-level programs the numpy operators vectorize: one
simulated thread block loads a tile from global memory into shared memory,
runs local sort, then alternates merge and rebuild fully inside shared
memory until k elements remain, and writes them back — the single-block
essence of the SortReducer pipeline.

They exist for *validation*: tests execute them through
:class:`repro.gpu.simt.ThreadBlock` (real data flow, every address audited)
and check

* functional agreement with :func:`repro.bitonic.operators.reduce_topk`
  and the numpy sort oracle, and
* that the measured shared-memory conflict factors and global transaction
  counts agree with the analytical models feeding the cost model.

Being Python-per-thread, they only run at micro scale (hundreds of
elements); the production path stays vectorized.
"""

from __future__ import annotations

from typing import Generator

from repro.bitonic.network import Step, local_sort_steps, rebuild_steps
from repro.errors import InvalidParameterError
from repro.gpu.simt import ThreadContext


def _compare_exchange(
    ctx: ThreadContext, step: Step, live: int
) -> Generator[None, None, None]:
    """One network step over the first ``live`` shared-memory words."""
    thread = ctx.thread_id
    pairs = live // 2
    if thread < pairs:
        low = thread & (step.inc - 1)
        i = (thread << 1) - low
        partner = i + step.inc
        left = ctx.shared_read(i)
        right = ctx.shared_read(partner)
        reverse = (i & step.direction_period) == 0
        if reverse ^ (left < right):
            left, right = right, left
        ctx.shared_write(i, left)
        ctx.shared_write(partner, right)
    yield


def _merge_compact(
    ctx: ThreadContext, k: int, live: int
) -> Generator[None, None, None]:
    """Merge adjacent k-run pairs and compact survivors to the front.

    Thread t handles survivor position t: it compares the two partners at
    distance k within its run pair and writes the maximum to the compacted
    location.  Two barriers keep the read and write phases apart (the
    write targets overlap other threads' read sources).
    """
    thread = ctx.thread_id
    survivors = live // 2
    value = None
    if thread < survivors:
        pair_base = (thread // k) * 2 * k
        offset = thread % k
        left = ctx.shared_read(pair_base + offset)
        right = ctx.shared_read(pair_base + offset + k)
        value = max(left, right)
    yield
    if thread < survivors:
        ctx.shared_write(thread, value)
    yield


def block_topk_kernel(ctx: ThreadContext, n: int, k: int) -> Generator[None, None, None]:
    """Full single-block bitonic top-k over global memory.

    Loads ``n`` elements (coalesced: thread t loads positions t, t + nt,
    ...), reduces them to the top ``k`` in shared memory, and writes those
    to global positions ``[n, n + k)`` (caller allocates the output region).
    """
    if n & (n - 1) or k & (k - 1):
        raise InvalidParameterError("micro kernel needs power-of-two n and k")
    thread = ctx.thread_id
    block = ctx.block_size

    # Coalesced load into shared memory.
    for position in range(thread, n, block):
        ctx.shared_write(position, ctx.global_read(position))
    yield

    for step in local_sort_steps(k):
        yield from _compare_exchange(ctx, step, n)

    live = n
    while live > k:
        yield from _merge_compact(ctx, k, live)
        live //= 2
        if live > k:
            for step in rebuild_steps(k):
                yield from _compare_exchange(ctx, step, live)

    # Final cleanup: the k survivors form one bitonic sequence; rebuild
    # sorts them (descending run first for k >= 2).
    for step in rebuild_steps(k):
        yield from _compare_exchange(ctx, step, k)

    for position in range(thread, k, block):
        ctx.global_write(n + position, ctx.shared_read(position))
    yield


def per_thread_heap_kernel(
    ctx: ThreadContext, n: int, k: int
) -> Generator[None, None, None]:
    """Algorithm 1 as a micro kernel: a k-slot buffer per thread in shared.

    Thread t owns shared words ``[t * k, (t + 1) * k)`` (a layout that
    conflicts, which the audit should show — real kernels interleave) and
    scans global positions t, t + nt, ...  Inserts replace the current
    minimum.  Results land in global ``[n, n + nt * k)``.
    """
    thread = ctx.thread_id
    block = ctx.block_size
    base = thread * k

    filled = 0
    for position in range(thread, n, block):
        value = ctx.global_read(position)
        if filled < k:
            ctx.shared_write(base + filled, value)
            filled += 1
            continue
        minimum_slot = 0
        minimum = ctx.shared_read(base)
        for slot in range(1, k):
            candidate = ctx.shared_read(base + slot)
            if candidate < minimum:
                minimum, minimum_slot = candidate, slot
        if value > minimum:
            ctx.shared_write(base + minimum_slot, value)
    yield
    for slot in range(filled):
        ctx.global_write(n + thread + slot * block, ctx.shared_read(base + slot))
    yield
