"""Combined-step planner: group network steps into shared-memory rounds.

A *round* is one shared-memory read/write cycle of a kernel: every live
element is read from shared memory into registers, a group of network steps
executes in registers, and the elements are written back.  Grouping more
steps per round divides the shared traffic by the group size — the
"Combining/Sequentializing Multiple Steps" optimization — at the price of
bank conflicts, which padding and chunk permutation then address.

The planner mirrors the engineering constraints the paper describes:

* a round can cover at most ``log2(B)`` distinct comparison-distance bits,
  because each thread must own both partners of every grouped comparison
  within its B registers;
* without padding, combining is only profitable for step groups whose
  unpadded lockstep access pattern stays near conflict-free (contiguous
  chunk groups would conflict B-way); the planner leaves other steps
  uncombined, matching the intermediate ablation configuration;
* padding lifts that restriction (contiguous groups become conflict-free),
  so every step joins a group greedily;
* chunk permutation replaces each group's delta with the best uniform
  staggered schedule (1.0 for every shape arising at k <= 256).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bitonic.network import Step
from repro.bitonic.optimizations import OptimizationFlags
from repro.gpu.banks import (
    ChunkShape,
    chunk_conflict_factor,
    single_step_conflict_factor,
)



@dataclass(frozen=True)
class Round:
    """One shared-memory round of a kernel."""

    steps: tuple[Step, ...]
    #: delta_i: bank-conflict serialization factor of the round's accesses.
    conflict_factor: float
    #: Words read + written per live element (2.0: one read, one write).
    words_per_element: float = 2.0

    @property
    def num_steps(self) -> int:
        return len(self.steps)


def _group_shape(bits: set[int], capacity_bits: int) -> ChunkShape:
    """Chunk shape for a group of distance bits, low-bit-filled to capacity.

    The thread's registers must hold both partners of every grouped
    comparison; spare register capacity is filled with the lowest free
    index bits (giving contiguous sub-chunks, the layout the paper's
    Figure 10 depicts for high-distance groups).
    """
    free = set(bits)
    fill = 0
    while len(free) < capacity_bits:
        if fill not in free:
            free.add(fill)
        fill += 1
    return ChunkShape(tuple(sorted(free)))


def _round_for_group(
    steps: list[Step], capacity_bits: int, flags: OptimizationFlags
) -> Round:
    bits = {step.distance_bit for step in steps}
    shape = _group_shape(bits, capacity_bits)
    factor = chunk_conflict_factor(
        shape, padding=flags.padding, chunk_permutation=flags.chunk_permutation
    )
    return Round(steps=tuple(steps), conflict_factor=factor)


def _single_round(step: Step) -> Round:
    return Round(
        steps=(step,),
        conflict_factor=single_step_conflict_factor(step.inc),
    )


def plan_rounds(
    steps: list[Step],
    flags: OptimizationFlags,
    elements_per_thread: int | None = None,
) -> list[Round]:
    """Group a step sequence into shared-memory rounds.

    ``elements_per_thread`` overrides ``flags.elements_per_thread`` — the
    kernels shrink it after in-kernel merges when partition reassignment is
    off, which is exactly the effect that optimization removes.
    """
    if not steps:
        return []
    capacity = elements_per_thread or flags.elements_per_thread
    # Windows deeper than 16 elements double bank conflicts instead of
    # saving traffic (Section 4.3's finding behind fixing B = 16), so the
    # round planner never groups more than 4 distance bits even when more
    # registers are available.
    capacity_bits = max(1, min(4, capacity.bit_length() - 1))
    if not flags.combined_steps:
        return [_single_round(step) for step in steps]

    rounds: list[Round] = []
    group: list[Step] = []
    group_bits: set[int] = set()

    def flush() -> None:
        if not group:
            return
        candidate = _round_for_group(group, capacity_bits, flags)
        if flags.padding:
            rounds.append(candidate)
        else:
            # Unpadded: combine only when the conflict-weighted traffic of
            # the combined round beats executing the steps one by one.
            singles = [_single_round(step) for step in group]
            combined_cost = candidate.words_per_element * candidate.conflict_factor
            if combined_cost <= rounds_traffic_words(singles):
                rounds.append(candidate)
            else:
                rounds.extend(singles)
        group.clear()
        group_bits.clear()

    for step in steps:
        bit = step.distance_bit
        if group and len(group_bits | {bit}) > capacity_bits:
            flush()
        group.append(step)
        group_bits.add(bit)
    flush()
    return rounds


def rounds_traffic_words(rounds: list[Round]) -> float:
    """Conflict-weighted shared words moved per live element."""
    return sum(r.words_per_element * r.conflict_factor for r in rounds)


def rounds_raw_words(rounds: list[Round]) -> float:
    """Unweighted shared words moved per live element."""
    return sum(r.words_per_element for r in rounds)
