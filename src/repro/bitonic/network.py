"""Bitonic network descriptions for the three top-k operators.

A bitonic computation is a sequence of *steps*; each step performs, fully in
parallel, one compare-exchange per element pair at a fixed distance:

* ``inc`` — the comparison distance (a power of two),
* ``direction_period`` — the power-of-two block size whose parity decides
  the comparison direction, exactly as in the paper's Algorithm 2/4:
  ``reverse = ((direction_period & i) == 0)`` for element index ``i``.

The three operators of Section 3.2 are step sequences:

* :func:`local_sort_steps` — turn an unsorted array into sorted runs of
  length k, alternating ascending/descending (Algorithm 2);
* the *merge* is a single step at distance k which keeps the pairwise
  maxima (Algorithm 3) — represented separately because it halves the data;
* :func:`rebuild_steps` — re-sort length-k bitonic sequences into
  alternating sorted runs in log2(k) steps (Algorithm 4).

These descriptions are shared by the functional executor
(:mod:`repro.bitonic.operators`), the kernel cost accounting
(:mod:`repro.bitonic.kernels`) and the combined-step planner
(:mod:`repro.bitonic.plan`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError


def is_power_of_two(value: int) -> bool:
    """True for 1, 2, 4, 8, ..."""
    return value > 0 and value & (value - 1) == 0


def validate_power_of_two(value: int, what: str) -> None:
    if not is_power_of_two(value):
        raise InvalidParameterError(f"{what} must be a power of two, got {value}")


@dataclass(frozen=True)
class Step:
    """One massively parallel compare-exchange step."""

    inc: int
    direction_period: int

    def __post_init__(self) -> None:
        validate_power_of_two(self.inc, "step distance")
        validate_power_of_two(self.direction_period, "direction period")
        if self.direction_period < 2 * self.inc:
            raise InvalidParameterError(
                "direction period must be at least twice the distance"
            )

    @property
    def distance_bit(self) -> int:
        """The index bit toggled by this step's comparisons."""
        return self.inc.bit_length() - 1


def local_sort_steps(k: int) -> list[Step]:
    """Steps of the local sort operator (Algorithm 2).

    Builds alternating ascending/descending runs of length k from an
    unsorted array: for each run length ``len = 1, 2, ..., k/2`` the phase
    performs steps at distances ``len, len/2, ..., 1`` with direction
    alternating every ``2 * len`` elements.
    """
    validate_power_of_two(k, "k")
    steps = []
    length = 1
    while length < k:
        inc = length
        while inc > 0:
            steps.append(Step(inc=inc, direction_period=2 * length))
            inc >>= 1
        length <<= 1
    return steps


def rebuild_steps(k: int) -> list[Step]:
    """Steps of the rebuild operator (Algorithm 4).

    The input consists of length-k *bitonic* sequences (the merge output),
    which sort in log2(k) steps starting at distance k/2 — the saving over
    a from-scratch local sort that Section 3.2 calls out.
    """
    validate_power_of_two(k, "k")
    if k == 1:
        return []
    steps = []
    inc = k >> 1
    while inc > 0:
        steps.append(Step(inc=inc, direction_period=k))
        inc >>= 1
    return steps


def full_sort_steps(n: int) -> list[Step]:
    """Steps of a complete bitonic sort of ``n`` elements (Section 2.2).

    Used by tests as a reference network and by the naive-baseline cost
    accounting: log2(n) phases, phase p having p steps, O(n log^2 n)
    comparisons in total.
    """
    validate_power_of_two(n, "n")
    steps = []
    length = 1
    while length < n:
        inc = length
        while inc > 0:
            # The final phase (length == n/2) must sort the whole array in
            # one direction; its direction period exceeds the array so the
            # comparison direction is uniform.
            steps.append(Step(inc=inc, direction_period=2 * length))
            inc >>= 1
        length <<= 1
    return steps


def comparisons_per_step(n: int) -> int:
    """Compare-exchange operations in one step over ``n`` elements."""
    return n // 2


def local_sort_comparisons(n: int, k: int) -> int:
    """Total comparisons of a local sort over ``n`` elements."""
    return comparisons_per_step(n) * len(local_sort_steps(k))


def topk_total_comparisons(n: int, k: int) -> int:
    """Total comparisons of the full bitonic top-k reduction.

    Local sort on n elements, then per halving round one merge step and a
    rebuild on the surviving half — the O(n log^2 k) bound of Appendix C.
    """
    validate_power_of_two(n, "n")
    validate_power_of_two(k, "k")
    if k > n:
        raise InvalidParameterError("k cannot exceed n")
    total = local_sort_comparisons(n, k)
    live = n
    while live > k:
        total += live // 2  # merge: one comparison per surviving element
        live //= 2
        total += comparisons_per_step(live) * len(rebuild_steps(k))
    return total
