"""Cross-query batching: fuse compatible in-flight queries into one launch.

The paper's own motivation for the batched kernel (TensorFlow/ArrayFire
want the batched form so per-row launches amortize) applied to *serving*:
when many small independent top-k queries are in flight at once, queries
with the same row shape and padded network width are stacked into a
``[batch, n]`` matrix and answered by a single
:func:`~repro.core.batched.batched_topk` launch — one fused execution
trace instead of N single-row traces.

Eligibility is decided on the plan IR: every planned request derives a
:class:`~repro.plan.Batch` compatibility node (row length, dtype, padded
network width ``network_k = next_pow2(k)``, recall expectation, the
planned approximate configuration, and the fused kernel family), and two
requests share a fused launch iff their Batch nodes **fingerprint
identically** and the plan cache picked a *batchable* algorithm — the
bitonic network (:func:`~repro.core.batched.batched_topk`) or the
RadiK-style radix select
(:func:`~repro.algorithms.radik.batched_radik_topk`).  The kernel family
rides in the Batch node, so bitonic-planned and radix-planned queries
never share a launch: each fused kernel *is* its algorithm, and batching
a query the cost models routed elsewhere could change its answer's
tie-breaking.  Queries with different literal ``k`` still share a batch
because both kernels emit rows in canonical descending order and a
smaller k is a prefix of the result (see ``docs/serving.md``).

A batch that hits an injected device fault is not failed: it falls back to
per-query execution through :class:`~repro.resilience.ResilientExecutor`,
whose retry/fallback chain ends on the CPU heap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import observability as obs
from repro.algorithms.radik import batched_radik_topk
from repro.bitonic.optimizations import FULL
from repro.core.batched import batched_topk
from repro.costmodel.base import UNIFORM_FLOAT, WorkloadProfile
from repro.errors import FaultError, ResourceExhaustedError
from repro.gpu import faults
from repro.gpu.device import DeviceSpec, get_device
from repro.gpu.timing import trace_time
from repro.observability.metrics import MetricsRegistry
from repro.plan import (
    BATCHABLE_ALGORITHM,
    BATCHABLE_ALGORITHMS,
    Batch,
    BoundPlan,
    TopKPlan,
    bind_plan,
)

__all__ = [
    "BATCHABLE_ALGORITHM",
    "BATCHABLE_ALGORITHMS",
    "BatchKey",
    "CrossQueryBatcher",
    "QueryOutcome",
    "ServingRequest",
]
from repro.plan import network_k as network_k  # re-exported serving helper
from repro.resilience.executor import ResilientExecutor
from repro.serving.plan_cache import PlanCache

#: Largest number of queries fused into one batched launch; grouping
#: chunks larger backlogs into consecutive launches of at most this size.
DEFAULT_MAX_BATCH = 128

#: Backwards-compatible alias: the batch compatibility key *is* the plan
#: IR's Batch node now; requests group on its fingerprint.
BatchKey = Batch


@dataclass
class ServingRequest:
    """One in-flight top-k query inside the serving layer."""

    data: np.ndarray
    k: int
    #: Resolution target for the answer (a concurrent.futures.Future when
    #: submitted through the scheduler; None when executed synchronously).
    future: object | None = None
    #: Fault injector active in the submitting thread, re-installed around
    #: execution so injection crosses the thread boundary.
    injector: object | None = None
    #: Filled by the dispatcher from the plan cache.
    plan: TopKPlan | None = None
    #: The cached executable (plan + instantiated kernel); hits skip
    #: registry lookup and kernel construction entirely.
    bound: BoundPlan | None = None
    #: Minimum acceptable recall for this query (1.0 = exact only).
    recall_target: float = 1.0
    #: Wall-clock (``time.perf_counter()``) and simulated timestamps taken
    #: at submit; the scheduler turns them into queue-wait attribution at
    #: dispatch.  None for requests executed without queuing.
    submitted_wall: float | None = None
    submitted_sim_ms: float | None = None
    #: Submit→dispatch latency, filled by the scheduler at dispatch time.
    queue_wait_wall_ms: float = 0.0
    queue_wait_sim_ms: float = 0.0
    #: SLO annotations (None/defaults outside the SLO serving layer): the
    #: absolute simulated-time deadline, the tenant QoS class name, and —
    #: when the scheduler lowered ``recall_target`` under pressure — the
    #: degradation flag plus the advertised recall floor of the degraded
    #: configuration.
    deadline_ms: float | None = None
    qos: str | None = None
    degraded: bool = False
    expected_recall: float = 1.0

    @property
    def key(self) -> Batch:
        """The request's :class:`~repro.plan.Batch` compatibility node."""
        if self.plan is not None:
            return self.plan.batch_node(
                n=len(self.data), k=self.k, dtype=str(self.data.dtype)
            )
        return Batch(
            n=len(self.data),
            dtype=str(self.data.dtype),
            network_k=network_k(self.k),
            recall_target=float(self.recall_target),
        )

    @property
    def batchable(self) -> bool:
        return self.plan is not None and self.plan.algorithm in BATCHABLE_ALGORITHMS


@dataclass
class QueryOutcome:
    """A served query's answer plus its execution accounting."""

    values: np.ndarray
    indices: np.ndarray
    k: int
    n: int
    algorithm: str
    plan: TopKPlan
    batched: bool = False
    batch_size: int = 1
    #: Simulated milliseconds of the launch that produced this answer (the
    #: *fused* total for a batched query — shared across the whole batch).
    simulated_ms: float = 0.0
    fell_back: bool = False
    #: Submit→dispatch latency carried over from the request.
    queue_wait_wall_ms: float = 0.0
    queue_wait_sim_ms: float = 0.0
    #: Whether the SLO scheduler served this answer at a lowered recall
    #: target, and the recall floor the chosen configuration advertises
    #: (1.0 for exact answers).
    degraded: bool = False
    expected_recall: float = 1.0

    @property
    def simulated_share_ms(self) -> float:
        """This query's per-query share of its launch's simulated time."""
        return self.simulated_ms / max(1, self.batch_size)


class CrossQueryBatcher:
    """Plans, groups, and executes serving requests.

    Pure synchronous logic — the thread scheduler drives it, and tests can
    call it directly.
    """

    def __init__(
        self,
        plan_cache: PlanCache | None = None,
        device: DeviceSpec | None = None,
        flags=None,
        max_batch: int = DEFAULT_MAX_BATCH,
        metrics: MetricsRegistry | None = None,
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ):
        self.device = device or get_device()
        # `is not None`, not `or`: an empty PlanCache is falsy (len == 0).
        self.plan_cache = (
            plan_cache
            if plan_cache is not None
            else PlanCache(device=self.device, metrics=metrics)
        )
        self.flags = flags if flags is not None else FULL
        self.max_batch = max(1, max_batch)
        self.metrics = metrics
        self.profile = profile
        # Running totals for stats()/the bench, independent of the registry.
        self.batches = 0
        self.batched_queries = 0
        self.single_queries = 0
        self.batch_fallbacks = 0
        self.fallback_queries = 0
        self.simulated_ms_total = 0.0

    # -- planning and grouping -------------------------------------------

    def plan(self, request: ServingRequest) -> TopKPlan:
        """Attach the (cached) bound plan for the request's shape.

        A cache hit hands back a ready-to-run :class:`BoundPlan` — the
        request skips re-planning, registry lookup, and kernel
        construction entirely on the single-query path.
        """
        request.bound = self.plan_cache.bound(
            len(request.data),
            request.k,
            request.data.dtype,
            self.profile,
            recall_target=request.recall_target,
        )
        request.plan = request.bound.plan
        return request.plan

    def group(
        self, requests: Sequence[ServingRequest]
    ) -> list[list[ServingRequest]]:
        """Partition requests into execution groups, preserving arrival
        order within each group.

        Batch-eligible requests with the same :class:`BatchKey` share a
        group (chunked at ``max_batch``); everything else runs alone.
        """
        groups: list[list[ServingRequest]] = []
        open_group: dict[BatchKey, list[ServingRequest]] = {}
        for request in requests:
            if request.plan is None:
                self.plan(request)
            if not request.batchable:
                groups.append([request])
                continue
            bucket = open_group.setdefault(request.key, [])
            bucket.append(request)
            if len(bucket) == 1:
                groups.append(bucket)
            if len(bucket) >= self.max_batch:
                del open_group[request.key]
        return groups

    # -- execution --------------------------------------------------------

    def execute(self, group: Sequence[ServingRequest]) -> list[QueryOutcome]:
        """Run one group — fused when it has more than one member."""
        injector = next(
            (request.injector for request in group if request.injector is not None),
            None,
        )
        context = faults.inject(injector) if injector is not None else None
        with obs.span(
            "serving-execute",
            category="serving",
            queries=len(group),
            queue_wait_wall_ms=round(
                max(request.queue_wait_wall_ms for request in group), 6
            ),
            queue_wait_sim_ms=round(
                max(request.queue_wait_sim_ms for request in group), 6
            ),
        ):
            if context is not None:
                with context:
                    return self._execute(group)
            return self._execute(group)

    def _execute(self, group: Sequence[ServingRequest]) -> list[QueryOutcome]:
        if len(group) > 1:
            try:
                return self._execute_batched(list(group))
            except (FaultError, ResourceExhaustedError):
                # A faulted fused launch degrades to per-query resilient
                # execution rather than failing every rider.
                self.batch_fallbacks += 1
                self._count("serving.batch_fallbacks")
                return [self._execute_resilient(request) for request in group]
        return [self._execute_single(request) for request in group]

    def _execute_batched(
        self, group: list[ServingRequest]
    ) -> list[QueryOutcome]:
        max_k = max(request.k for request in group)
        matrix = np.stack([request.data for request in group])
        # The whole group shares one Batch fingerprint, which includes the
        # planned kernel family — dispatch the matching fused launch.
        # Smaller-k riders take a prefix of the fused result either way:
        # both kernels emit rows in the canonical descending order.
        if group[0].plan.algorithm == "radik":
            result = batched_radik_topk(matrix, max_k, device=self.device)
        else:
            result = batched_topk(
                matrix, max_k, device=self.device, flags=self.flags
            )
        simulated_ms = trace_time(result.trace, self.device).total_ms
        self.batches += 1
        self.batched_queries += len(group)
        self.simulated_ms_total += simulated_ms
        self._count("serving.batches")
        self._count("serving.batched_queries", len(group))
        self._observe_batch(len(group), simulated_ms)
        outcomes = []
        for row, request in enumerate(group):
            outcomes.append(
                QueryOutcome(
                    values=result.values[row, : request.k].copy(),
                    indices=result.indices[row, : request.k].copy(),
                    k=request.k,
                    n=len(request.data),
                    algorithm=result.algorithm,
                    plan=request.plan,
                    batched=True,
                    batch_size=len(group),
                    simulated_ms=simulated_ms,
                    queue_wait_wall_ms=request.queue_wait_wall_ms,
                    queue_wait_sim_ms=request.queue_wait_sim_ms,
                    degraded=request.degraded,
                    expected_recall=request.expected_recall,
                )
            )
        return outcomes

    def _execute_single(self, request: ServingRequest) -> QueryOutcome:
        try:
            bound = request.bound
            if bound is None:
                # Requests injected without going through plan(): bind on
                # the spot so execution still walks the same code path.
                bound = bind_plan(request.plan, self.device, flags=self.flags)
            result = bound.run(request.data, request.k)
        except (FaultError, ResourceExhaustedError):
            return self._execute_resilient(request)
        simulated_ms = trace_time(result.trace, self.device).total_ms
        self.single_queries += 1
        self.simulated_ms_total += simulated_ms
        self._count("serving.single_queries")
        return QueryOutcome(
            values=result.values,
            indices=result.indices,
            k=request.k,
            n=len(request.data),
            algorithm=result.algorithm,
            plan=request.plan,
            simulated_ms=simulated_ms,
            queue_wait_wall_ms=request.queue_wait_wall_ms,
            queue_wait_sim_ms=request.queue_wait_sim_ms,
            degraded=request.degraded,
            expected_recall=request.expected_recall,
        )

    def _execute_resilient(self, request: ServingRequest) -> QueryOutcome:
        """Per-query fallback: the resilience layer's retry/fallback chain
        (ending on the CPU heap) finishes what the fused launch could not."""
        executor = ResilientExecutor(self.device)
        result = executor.run(
            request.data,
            request.k,
            algorithm=request.plan.algorithm,
            profile=self.profile,
        )
        simulated_ms = trace_time(result.trace, self.device).total_ms
        self.fallback_queries += 1
        self.simulated_ms_total += simulated_ms
        self._count("serving.fallback_queries")
        return QueryOutcome(
            values=result.values,
            indices=result.indices,
            k=request.k,
            n=len(request.data),
            algorithm=result.algorithm,
            plan=request.plan,
            simulated_ms=simulated_ms,
            fell_back=True,
            queue_wait_wall_ms=request.queue_wait_wall_ms,
            queue_wait_sim_ms=request.queue_wait_sim_ms,
            degraded=request.degraded,
            expected_recall=request.expected_recall,
        )

    # -- stats ------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "batches": self.batches,
            "batched_queries": self.batched_queries,
            "single_queries": self.single_queries,
            "batch_fallbacks": self.batch_fallbacks,
            "fallback_queries": self.fallback_queries,
            "simulated_ms_total": self.simulated_ms_total,
            "mean_batch_size": (
                self.batched_queries / self.batches if self.batches else 0.0
            ),
        }

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _observe_batch(self, size: int, simulated_ms: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram("serving.batch_size").observe(size)
            self.metrics.histogram("serving.batch_simulated_ms").observe(
                simulated_ms
            )
