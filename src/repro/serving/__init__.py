"""Concurrent serving layer: plan cache, cross-query batching, scheduler.

``repro.serving`` turns the single-query engine into a serving tier:

* :class:`PlanCache` memoizes the cost-model planner per
  ``(n, k, dtype, profile, device)`` shape;
* :class:`CrossQueryBatcher` fuses compatible in-flight queries into one
  :func:`~repro.core.batched.batched_topk` launch;
* :class:`TopKServer` is the thread-based front door with bounded-queue
  admission control and per-query Futures;
* :func:`run_serving_benchmark` replays a synthetic workload through both
  the sequential and served paths (the ``repro serve-bench`` command).
"""

from repro.serving.batcher import (
    BATCHABLE_ALGORITHM,
    BATCHABLE_ALGORITHMS,
    DEFAULT_MAX_BATCH,
    BatchKey,
    CrossQueryBatcher,
    QueryOutcome,
    ServingRequest,
    network_k,
)
from repro.serving.bench import (
    ServeBenchReport,
    Workload,
    check_baseline,
    run_serving_benchmark,
)
from repro.serving.plan_cache import DEFAULT_CAPACITY, PlanCache
from repro.serving.scheduler import DEFAULT_MAX_PENDING, TopKServer

__all__ = [
    "BATCHABLE_ALGORITHM",
    "BATCHABLE_ALGORITHMS",
    "DEFAULT_CAPACITY",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_PENDING",
    "BatchKey",
    "CrossQueryBatcher",
    "PlanCache",
    "QueryOutcome",
    "ServeBenchReport",
    "ServingRequest",
    "TopKServer",
    "Workload",
    "check_baseline",
    "network_k",
    "run_serving_benchmark",
]
