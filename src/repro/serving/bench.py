"""The serving throughput benchmark behind ``repro serve-bench``.

Replays a synthetic N-query repeated-shape workload two ways and compares
them:

* **sequential** — the pre-serving-layer path: every query pays a fresh
  :meth:`TopKPlanner.choose` and runs its winner alone (one launch
  pipeline per query);
* **served** — through :class:`~repro.serving.TopKServer` with the plan
  cache and cross-query batching enabled (or selectively disabled, for
  ablations).

Both paths must produce *bit-equal* per-query answers — the report carries
an ``identical`` flag the CLI turns into its exit code.  Throughput is
reported in wall-clock queries/second and in simulated milliseconds (the
deterministic figure CI gates on; wall clock is machine-dependent).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.registry import create
from repro.core.planner import TopKPlanner
from repro.errors import InvalidParameterError
from repro.gpu.device import DeviceSpec, get_device
from repro.bench.common import BASELINE_TOLERANCE, drifted
from repro.gpu.timing import trace_time
from repro.serving.scheduler import TopKServer

#: JSON schema tag of a serialized report.
REPORT_FORMAT = "repro-serving-bench"
REPORT_VERSION = 1


@dataclass
class Workload:
    """A repeated-shape stream of top-k queries."""

    queries: int = 1000
    shapes: int = 4
    n: int = 512
    k: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.queries < 1:
            raise InvalidParameterError(
                f"workload needs at least 1 query, got {self.queries}"
            )
        if self.shapes < 1:
            raise InvalidParameterError(
                f"workload needs at least 1 shape, got {self.shapes}"
            )
        if self.n < 1 or self.k < 1:
            raise InvalidParameterError(
                f"invalid workload shape: n = {self.n}, k = {self.k}"
            )

    def generate(self) -> list[tuple[np.ndarray, int]]:
        """Materialize the stream: ``(data, k)`` per query, round-robin
        over ``shapes`` distinct ``(n, k)`` configurations."""
        rng = np.random.default_rng(self.seed)
        stream = []
        for index in range(self.queries):
            shape = index % self.shapes
            k = min(self.k + shape, self.n)
            data = rng.random(self.n, dtype=np.float32)
            stream.append((data, k))
        return stream

    def to_dict(self) -> dict:
        return {
            "queries": self.queries,
            "shapes": self.shapes,
            "n": self.n,
            "k": self.k,
            "seed": self.seed,
        }


@dataclass
class PathResult:
    """One execution path's measurements over the workload."""

    wall_seconds: float
    simulated_ms: float
    values: list = field(repr=False, default_factory=list)
    indices: list = field(repr=False, default_factory=list)

    def queries_per_second(self, queries: int) -> float:
        return queries / self.wall_seconds if self.wall_seconds > 0 else 0.0


@dataclass
class ServeBenchReport:
    """The benchmark's comparison of sequential vs. served execution."""

    workload: Workload
    sequential: PathResult
    served: PathResult
    identical: bool
    cache: dict
    batcher: dict

    @property
    def wall_speedup(self) -> float:
        if self.served.wall_seconds <= 0:
            return float("inf")
        return self.sequential.wall_seconds / self.served.wall_seconds

    @property
    def simulated_speedup(self) -> float:
        if self.served.simulated_ms <= 0:
            return float("inf")
        return self.sequential.simulated_ms / self.served.simulated_ms

    @property
    def hit_rate(self) -> float:
        return self.cache.get("hit_rate", 0.0)

    def to_dict(self) -> dict:
        queries = self.workload.queries
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "workload": self.workload.to_dict(),
            "sequential": {
                "wall_seconds": self.sequential.wall_seconds,
                "queries_per_second": self.sequential.queries_per_second(queries),
                "simulated_ms": self.sequential.simulated_ms,
            },
            "served": {
                "wall_seconds": self.served.wall_seconds,
                "queries_per_second": self.served.queries_per_second(queries),
                "simulated_ms": self.served.simulated_ms,
            },
            "wall_speedup": self.wall_speedup,
            "simulated_speedup": self.simulated_speedup,
            "identical": self.identical,
            "plan_cache": dict(self.cache),
            "batcher": dict(self.batcher),
        }

    def render(self) -> str:
        queries = self.workload.queries
        lines = [
            f"workload     : {queries} queries, {self.workload.shapes} shapes, "
            f"n = {self.workload.n}, k = {self.workload.k}+, "
            f"seed = {self.workload.seed}",
            "",
            f"{'path':<12} {'wall s':>9} {'queries/s':>11} {'simulated ms':>13}",
            f"{'sequential':<12} {self.sequential.wall_seconds:>9.3f} "
            f"{self.sequential.queries_per_second(queries):>11.1f} "
            f"{self.sequential.simulated_ms:>13.3f}",
            f"{'served':<12} {self.served.wall_seconds:>9.3f} "
            f"{self.served.queries_per_second(queries):>11.1f} "
            f"{self.served.simulated_ms:>13.3f}",
            "",
            f"speedup      : {self.wall_speedup:.2f}x wall, "
            f"{self.simulated_speedup:.2f}x simulated",
            f"plan cache   : {self.cache['hits']:.0f} hits / "
            f"{self.cache['misses']:.0f} misses "
            f"({self.hit_rate:.1%} hit rate, "
            f"{self.cache['evictions']:.0f} evictions)",
            f"batching     : {self.batcher['batches']} fused launches covering "
            f"{self.batcher['batched_queries']} queries "
            f"(mean batch {self.batcher['mean_batch_size']:.1f}), "
            f"{self.batcher['single_queries']} singles, "
            f"{self.batcher['fallback_queries']} fallbacks",
            f"results      : "
            f"{'bit-equal to sequential' if self.identical else 'MISMATCH'}",
        ]
        return "\n".join(lines)


def _run_sequential(
    stream: list[tuple[np.ndarray, int]], device: DeviceSpec
) -> PathResult:
    """The per-query baseline: plan, then run the winner, every time."""
    planner = TopKPlanner(device)
    values, indices = [], []
    simulated_ms = 0.0
    started = time.perf_counter()
    for data, k in stream:
        choice = planner.choose(len(data), k, data.dtype)
        result = create(choice.algorithm, device).run(data, k)
        simulated_ms += trace_time(result.trace, device).total_ms
        values.append(result.values)
        indices.append(result.indices)
    wall = time.perf_counter() - started
    return PathResult(wall, simulated_ms, values, indices)


def _run_served(
    stream: list[tuple[np.ndarray, int]],
    device: DeviceSpec,
    cache: bool,
    batching: bool,
    max_batch: int,
) -> tuple[PathResult, dict, dict]:
    # The dispatcher stays stalled until the whole workload is enqueued, so
    # the batch splits (and therefore the served simulated-ms total) are
    # deterministic — the property the CI baseline gate relies on.
    server = TopKServer(
        device=device,
        max_pending=len(stream) + 1,
        max_batch=max_batch,
        enable_cache=cache,
        enable_batching=batching,
        auto_start=False,
    )
    try:
        started = time.perf_counter()
        futures = [server.submit(data, k) for data, k in stream]
        server.start()
        outcomes = [future.result() for future in futures]
        wall = time.perf_counter() - started
    finally:
        server.close()
    simulated_ms = server.batcher.simulated_ms_total
    result = PathResult(
        wall,
        simulated_ms,
        [outcome.values for outcome in outcomes],
        [outcome.indices for outcome in outcomes],
    )
    return result, server.plan_cache.stats(), server.batcher.stats()


def _bit_equal(first: PathResult, second: PathResult) -> bool:
    return all(
        np.array_equal(a, b, equal_nan=True) and np.array_equal(i, j)
        for (a, i), (b, j) in zip(
            zip(first.values, first.indices), zip(second.values, second.indices)
        )
    )


def run_serving_benchmark(
    workload: Workload | None = None,
    device: DeviceSpec | None = None,
    cache: bool = True,
    batching: bool = True,
    max_batch: int = 128,
) -> ServeBenchReport:
    """Replay the workload on both paths and compare."""
    workload = workload or Workload()
    device = device or get_device()
    stream = workload.generate()
    sequential = _run_sequential(stream, device)
    served, cache_stats, batcher_stats = _run_served(
        stream, device, cache, batching, max_batch
    )
    return ServeBenchReport(
        workload=workload,
        sequential=sequential,
        served=served,
        identical=_bit_equal(sequential, served),
        cache=cache_stats,
        batcher=batcher_stats,
    )


def check_baseline(report: ServeBenchReport, baseline: dict) -> list[str]:
    """Regression-gate a report against a committed baseline.

    Returns the list of violations (empty = pass).  Only deterministic
    quantities are gated — simulated milliseconds and the cache hit rate —
    never wall clock, which depends on the machine.
    """
    problems = []
    if baseline.get("format") != REPORT_FORMAT:
        return [f"baseline is not a {REPORT_FORMAT} document"]
    if baseline.get("workload") != report.workload.to_dict():
        return [
            "baseline workload differs from the benchmarked workload: "
            f"{baseline.get('workload')} vs {report.workload.to_dict()}"
        ]
    for path in ("sequential", "served"):
        expected = baseline[path]["simulated_ms"]
        measured = report.to_dict()[path]["simulated_ms"]
        if drifted(measured, expected):
            problems.append(
                f"{path} simulated ms {measured:.3f} deviates more than "
                f"{BASELINE_TOLERANCE:.0%} from baseline {expected:.3f}"
            )
    expected_rate = baseline.get("plan_cache", {}).get("hit_rate")
    if expected_rate is not None and report.hit_rate < expected_rate - 0.05:
        problems.append(
            f"plan cache hit rate {report.hit_rate:.1%} fell below baseline "
            f"{expected_rate:.1%}"
        )
    return problems
