"""Thread-based serving scheduler with admission control.

:class:`TopKServer` is the concurrency layer of ``repro.serving``: callers
submit queries from any thread and receive
:class:`concurrent.futures.Future` objects; a dispatcher thread drains the
pending queue, consults the :class:`~repro.serving.plan_cache.PlanCache`,
groups compatible queries through the
:class:`~repro.serving.batcher.CrossQueryBatcher`, and resolves the
futures.  Draining whatever has accumulated since the last dispatch is
what creates batches: under concurrent load many same-shape queries are
pending at once and leave as one fused launch.

Admission control is a hard bound on in-flight queries: past
``max_pending`` the server *sheds load* by raising a typed
:class:`~repro.errors.ResourceExhaustedError` at submit time instead of
growing an unbounded backlog — the standard overload contract of a
production serving tier.

Observability: the server owns (or adopts from its session) a
:class:`~repro.observability.MetricsRegistry` and publishes
``serving.submitted`` / ``serving.completed`` / ``serving.rejected`` /
``serving.failed`` counters, a ``serving.queue_depth`` gauge, and the plan
cache and batcher instruments.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future

import numpy as np

from repro import observability as obs
from repro.algorithms.base import validate_topk_args
from repro.bitonic.optimizations import FULL, OptimizationFlags
from repro.costmodel.base import UNIFORM_FLOAT, WorkloadProfile
from repro.errors import (
    InvalidParameterError,
    ResourceExhaustedError,
    ShutdownError,
)
from repro.gpu import faults
from repro.gpu.device import DeviceSpec, get_device
from repro.serving.batcher import (
    DEFAULT_MAX_BATCH,
    CrossQueryBatcher,
    QueryOutcome,
    ServingRequest,
)
from repro.serving.plan_cache import DEFAULT_CAPACITY, PlanCache

#: Default bound on in-flight queries before submissions are shed.
DEFAULT_MAX_PENDING = 1024


class TopKServer:
    """Concurrent top-k serving on top of a :class:`~repro.engine.Session`.

        >>> from repro.engine import Session, generate_tweets
        >>> session = Session(trace=True)
        >>> session.register(generate_tweets(1 << 14))
        >>> with session.serve() as server:
        ...     futures = [
        ...         server.submit(table="tweets", column="likes_count", k=10)
        ...         for _ in range(100)
        ...     ]
        ...     answers = [f.result() for f in futures]

    The server also accepts raw vectors (``server.submit(data, k=8)``) for
    workloads that bring their own payloads rather than querying a
    registered table.
    """

    def __init__(
        self,
        session=None,
        device: DeviceSpec | None = None,
        flags: OptimizationFlags = FULL,
        max_pending: int = DEFAULT_MAX_PENDING,
        max_batch: int = DEFAULT_MAX_BATCH,
        cache_capacity: int = DEFAULT_CAPACITY,
        enable_cache: bool = True,
        enable_batching: bool = True,
        metrics: obs.MetricsRegistry | None = None,
        profile: WorkloadProfile = UNIFORM_FLOAT,
        auto_start: bool = True,
        max_shards: int = 1,
    ):
        if max_pending < 1:
            raise InvalidParameterError(
                f"max_pending must be at least 1, got {max_pending}"
            )
        self.session = session
        self.device = device or (
            session.device if session is not None else get_device()
        )
        self.flags = flags
        self.max_pending = max_pending
        self.enable_batching = enable_batching
        #: Metrics sink: an explicit registry, the session's (trace=True),
        #: or a private one — never None, so counters always accumulate.
        self.metrics = (
            metrics
            if metrics is not None
            else (
                session.metrics
                if session is not None and session.metrics is not None
                else obs.MetricsRegistry()
            )
        )
        self.plan_cache = PlanCache(
            device=self.device,
            capacity=cache_capacity,
            metrics=self.metrics,
            enabled=enable_cache,
            max_shards=max_shards,
        )
        self.batcher = CrossQueryBatcher(
            plan_cache=self.plan_cache,
            device=self.device,
            flags=flags,
            max_batch=max_batch if enable_batching else 1,
            metrics=self.metrics,
            profile=profile,
        )
        self._pending: deque[ServingRequest] = deque()
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._in_flight = 0
        self._closed = False
        self._dispatcher: threading.Thread | None = None
        if auto_start:
            self.start()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "TopKServer":
        """Start the dispatcher thread (idempotent)."""
        with self._lock:
            if self._closed:
                raise InvalidParameterError("cannot start a closed server")
            if self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    name="repro-serving-dispatcher",
                    daemon=True,
                )
                self._dispatcher.start()
        return self

    def close(self) -> None:
        """Drain outstanding work and stop the dispatcher.

        A running dispatcher finishes the backlog before exiting.  If the
        dispatcher never started (``auto_start=False`` without
        :meth:`start`) — or died — queued futures would otherwise hang
        forever; they are failed with a typed
        :class:`~repro.errors.ShutdownError` instead, so every submitted
        future resolves exactly once.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._work_ready.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join()
            self._dispatcher = None
        with self._lock:
            abandoned = list(self._pending)
            self._pending.clear()
            self._idle.notify_all()
        for request in abandoned:
            self.metrics.counter("serving.failed").inc()
            self.metrics.counter("serving.abandoned").inc()
            if request.future is not None:
                request.future.set_exception(
                    ShutdownError(
                        "server shut down before this query was dispatched"
                    )
                )

    def __enter__(self) -> "TopKServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission -------------------------------------------------------

    def submit(
        self,
        data: np.ndarray | None = None,
        k: int = 1,
        table: str | None = None,
        column: str | None = None,
        recall_target: float = 1.0,
    ) -> Future:
        """Enqueue one top-k query; returns a Future of
        :class:`~repro.serving.batcher.QueryOutcome`.

        Either ``data`` (a 1-D vector) or ``table`` + ``column`` (resolved
        through the server's session — the ``ORDER BY column DESC LIMIT k``
        shape) must be provided.

        ``recall_target`` below 1.0 lets the plan cache route this query
        to the bucketed approximate operator when the cost model finds a
        configuration meeting the target; the plan-cache key and batch
        grouping both include it, so exact and approximate traffic never
        mix.

        Raises :class:`~repro.errors.ResourceExhaustedError` when the
        server is over its ``max_pending`` admission bound.
        """
        request = self._make_request(data, k, table, column, recall_target)
        future: Future = Future()
        request.future = future
        request.submitted_wall = time.perf_counter()
        request.submitted_sim_ms = self._sim_now_ms()
        with self._lock:
            if self._closed:
                raise InvalidParameterError(
                    "cannot submit to a closed server"
                )
            if len(self._pending) + self._in_flight >= self.max_pending:
                self.metrics.counter("serving.rejected").inc()
                raise ResourceExhaustedError(
                    f"serving queue is full ({self.max_pending} queries "
                    f"pending); shedding load"
                )
            self._pending.append(request)
            self.metrics.counter("serving.submitted").inc()
            self.metrics.gauge("serving.queue_depth").set(len(self._pending))
            self._work_ready.notify()
        return future

    def submit_many(self, requests) -> list[Future]:
        """Submit an iterable of ``(data, k)`` pairs; one Future each."""
        return [self.submit(data, k) for data, k in requests]

    def query(
        self,
        data: np.ndarray | None = None,
        k: int = 1,
        table: str | None = None,
        column: str | None = None,
        recall_target: float = 1.0,
    ) -> QueryOutcome:
        """Synchronous convenience: submit and wait for the answer."""
        return self.submit(data, k, table, column, recall_target).result()

    def flush(self) -> None:
        """Block until every submitted query has been resolved."""
        with self._idle:
            self._idle.wait_for(
                lambda: not self._pending and self._in_flight == 0
            )

    # -- request construction ---------------------------------------------

    def _make_request(
        self,
        data: np.ndarray | None,
        k: int,
        table: str | None,
        column: str | None,
        recall_target: float = 1.0,
    ) -> ServingRequest:
        if (data is None) == (table is None and column is None):
            raise InvalidParameterError(
                "provide either a data vector or table= and column="
            )
        if not 0.0 < recall_target <= 1.0:
            raise InvalidParameterError(
                f"recall_target must be in (0, 1], got {recall_target}"
            )
        if data is None:
            if self.session is None:
                raise InvalidParameterError(
                    "table/column queries need a server bound to a Session"
                )
            if table is None or column is None:
                raise InvalidParameterError(
                    "table queries need both table= and column="
                )
            data = self.session.table(table).column(column)
        data = np.asarray(data)
        validate_topk_args(data, k)
        return ServingRequest(
            data=data,
            k=int(k),
            injector=faults.active_injector(),
            recall_target=float(recall_target),
        )

    # -- dispatch ---------------------------------------------------------

    def _sim_now_ms(self) -> float:
        """The server's simulated clock: accumulated execution cost.

        A thread server has no event loop to keep simulated time; the
        monotone total of simulated milliseconds the batcher has executed
        is the natural analogue, and what queue-wait attribution and the
        SLO subclass's deadlines are measured against.
        """
        return float(self.batcher.simulated_ms_total)

    def _note_queue_wait(self, drained) -> None:
        """Record each drained request's submit→dispatch latency (both
        clocks) on the request and in the metrics registry."""
        now_wall = time.perf_counter()
        now_sim = self._sim_now_ms()
        for request in drained:
            if request.submitted_wall is not None:
                request.queue_wait_wall_ms = (
                    now_wall - request.submitted_wall
                ) * 1e3
            if request.submitted_sim_ms is not None:
                request.queue_wait_sim_ms = max(
                    0.0, now_sim - request.submitted_sim_ms
                )
            self.metrics.histogram("serving.queue_wait_wall_ms").observe(
                request.queue_wait_wall_ms
            )
            self.metrics.histogram("serving.queue_wait_sim_ms").observe(
                request.queue_wait_sim_ms
            )

    def _prepare(self, drained: list) -> list:
        """Scheduling hook: order (and possibly shed or degrade) one
        drained backlog before planning.  The base server is FIFO — the
        backlog passes through untouched; the SLO server overrides this
        with deadline-aware admission."""
        return drained

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                self._work_ready.wait_for(
                    lambda: self._pending or self._closed
                )
                if not self._pending and self._closed:
                    return
                # Drain the whole backlog: everything that queued while the
                # previous dispatch executed becomes batching material now.
                drained = list(self._pending)
                self._pending.clear()
                self._in_flight += len(drained)
                self.metrics.gauge("serving.queue_depth").set(0)
            try:
                self._note_queue_wait(drained)
                planned = []
                for request in self._prepare(drained):
                    # A planning failure (no feasible algorithm for the
                    # shape) fails that query's future, never the thread.
                    try:
                        self.batcher.plan(request)
                    except Exception as error:  # noqa: BLE001
                        self.metrics.counter("serving.failed").inc()
                        if request.future is not None:
                            request.future.set_exception(error)
                        continue
                    planned.append(request)
                for group in self.batcher.group(planned):
                    self._run_group(group)
            finally:
                with self._lock:
                    self._in_flight -= len(drained)
                    self._idle.notify_all()

    def _run_group(self, group) -> None:
        try:
            outcomes = self.batcher.execute(group)
        except Exception as error:  # noqa: BLE001 — delivered via futures
            self.metrics.counter("serving.failed").inc(len(group))
            for request in group:
                if request.future is not None:
                    request.future.set_exception(error)
            return
        self.metrics.counter("serving.completed").inc(len(group))
        for request, outcome in zip(group, outcomes):
            if request.future is not None:
                request.future.set_result(outcome)

    # -- introspection ----------------------------------------------------

    @property
    def cache_enabled(self) -> bool:
        return self.plan_cache.enabled

    def stats(self) -> dict:
        """Aggregate serving statistics (cache, batcher, admission)."""
        with self._lock:
            pending = len(self._pending)
        return {
            "pending": pending,
            "max_pending": self.max_pending,
            "submitted": self.metrics.value("serving.submitted") or 0.0,
            "completed": self.metrics.value("serving.completed") or 0.0,
            "rejected": self.metrics.value("serving.rejected") or 0.0,
            "failed": self.metrics.value("serving.failed") or 0.0,
            "plan_cache": self.plan_cache.stats(),
            "batcher": self.batcher.stats(),
        }
