"""Memoizing plan cache: pay planning and binding once per shape.

A production serving layer sees millions of queries but only a handful of
distinct *shapes* — the planner's decision depends only on
``(n, k, dtype, profile, device, recall_target, max_shards)``, never on the payload
bytes, so its cost-model evaluation (which builds full kernel traces for
every candidate algorithm) is pure and cacheable.  :class:`PlanCache`
keys an LRU map on the stable fingerprint of that plan request and stores
**bound executable plans** (:class:`~repro.plan.BoundPlan`: the typed
plan tree plus its instantiated winning kernel), so a cache hit skips
re-planning, registry lookup, kernel construction, *and* parameter
re-validation — the payload goes straight into the prepared runner.

Counters are published to the observability metrics registry:

* ``serving.plan_cache.hits`` / ``.misses`` / ``.evictions`` — counters;
* ``serving.plan_cache.size`` — gauge (current number of cached plans).

Thread safety: the map and the hit/miss/eviction counters are only ever
touched under the cache's lock (``TopKServer``'s dispatcher thread and
direct callers may race on them otherwise).  Planning and binding happen
*outside* the lock, so a slow cost-model evaluation never blocks
concurrent lookups of other shapes; two threads missing on the same new
shape may both plan it, but only the first insert is kept, so the cached
object stays stable across hits.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import RLock

import numpy as np

from repro import observability as obs
from repro.core.planner import TopKPlanner
from repro.costmodel.base import UNIFORM_FLOAT, WorkloadProfile
from repro.errors import InvalidParameterError
from repro.gpu.device import DeviceSpec
from repro.plan import BoundPlan, TopKPlan, bind_plan
from repro.plan.plan import request_fingerprint

#: Default maximum number of cached plans; an entry is a small plan tree
#: plus one kernel instance, so the default bounds memory while covering
#: any realistic shape mix.
DEFAULT_CAPACITY = 256

#: Cache keys are plan-request fingerprints (stable hex digests).
PlanKey = str


class PlanCache:
    """LRU map from plan-request fingerprints to bound executable plans."""

    def __init__(
        self,
        planner: TopKPlanner | None = None,
        device: DeviceSpec | None = None,
        capacity: int = DEFAULT_CAPACITY,
        metrics: obs.MetricsRegistry | None = None,
        enabled: bool = True,
        max_shards: int = 1,
    ):
        if capacity < 1:
            raise InvalidParameterError(
                f"plan cache capacity must be at least 1, got {capacity}"
            )
        self.planner = planner or TopKPlanner(device)
        #: Shard budget forwarded to every planning request.  Part of the
        #: cache key: a sharding-enabled cache must never serve (or
        #: poison) single-device fingerprints on the same shape.
        self.max_shards = max_shards
        self.capacity = capacity
        #: When disabled every lookup replans (and counts as a miss) — the
        #: baseline the serve-bench compares against.
        self.enabled = enabled
        #: Explicit sink for the cache's counters; when None the registry
        #: active in the calling thread (if any) is used instead, so the
        #: cache works both standalone and inside a server.
        self.metrics = metrics
        self._entries: OrderedDict[PlanKey, BoundPlan] = OrderedDict()
        self._lock = RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- keys -------------------------------------------------------------

    def key(
        self,
        n: int,
        k: int,
        dtype: np.dtype,
        profile: WorkloadProfile = UNIFORM_FLOAT,
        recall_target: float = 1.0,
    ) -> PlanKey:
        """The memoization key: the stable fingerprint of the plan request
        (everything the planner's decision reads).

        A calibrating planner's decisions also read its store's fitted
        correction factors, so the store *epoch* (bumped on every refit
        that changes a factor) is part of the key — a drifted correction
        must never serve a plan cached under the old factors.  With
        ``calibrate=False`` (or a store that never fitted) the epoch is 0
        and keys are byte-identical to the pre-calibration cache.
        """
        epoch = 0
        if getattr(self.planner, "calibrate", False):
            store = getattr(self.planner, "calibration", None)
            if store is not None:
                epoch = store.epoch
        return request_fingerprint(
            n,
            k,
            str(np.dtype(dtype)),
            profile.name,
            self.planner.device.name,
            recall_target,
            max_shards=self.max_shards,
            calibration_epoch=epoch,
        )

    # -- the memoized calls -----------------------------------------------

    def choose(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
        recall_target: float = 1.0,
    ) -> TopKPlan:
        """:meth:`TopKPlanner.choose`, paid once per distinct shape.

        A miss plans *and binds* the winner, inserting the resulting
        :class:`BoundPlan` so :meth:`bound` can serve it without another
        registry trip.  This is also the planning seam: everything the
        serving layer executes was planned through this method.
        """
        key = self.key(n, k, dtype, profile, recall_target)
        if self.enabled:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self._publish("hits")
                    return entry.plan
        # Plan and bind outside the lock: cost-model evaluation is the
        # expensive part and must not serialize unrelated lookups.
        plan = self.planner.choose(
            n,
            k,
            dtype,
            profile,
            recall_target=recall_target,
            max_shards=self.max_shards,
        )
        entry = bind_plan(plan, self.planner.device)
        with self._lock:
            self.misses += 1
            self._publish("misses")
            if self.enabled:
                existing = self._entries.get(key)
                if existing is not None:
                    # A concurrent miss beat us to the insert; keep the
                    # first bound plan so hits stay referentially stable.
                    self._entries.move_to_end(key)
                    return existing.plan
                self._entries[key] = entry
                if len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    self._publish("evictions")
        return entry.plan

    def bound(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
        recall_target: float = 1.0,
    ) -> BoundPlan:
        """The bound executable plan for a shape — the cache-hit fast
        path hands the prepared runner straight to the caller.

        Delegates planning to :meth:`choose` (so tests and callers that
        patch or wrap ``choose`` see every planning request), then reads
        the bound entry it inserted; only a disabled cache re-binds.
        """
        key = self.key(n, k, dtype, profile, recall_target)
        plan = self.choose(n, k, dtype, profile, recall_target=recall_target)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                return entry
        return bind_plan(plan, self.planner.device)

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
                "hit_rate": self.hits / total if total else 0.0,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- metrics ----------------------------------------------------------

    def _publish(self, event: str) -> None:
        """Caller must hold the lock (size gauge reads the map)."""
        registry = self.metrics if self.metrics is not None else obs.active_metrics()
        if registry is None:
            return
        registry.counter(f"serving.plan_cache.{event}").inc()
        registry.gauge("serving.plan_cache.size").set(len(self._entries))
