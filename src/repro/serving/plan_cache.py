"""Memoizing plan cache: pay :meth:`TopKPlanner.choose` once per shape.

A production serving layer sees millions of queries but only a handful of
distinct *shapes* — the planner's decision depends only on
``(n, k, dtype, profile, device, recall_target)``, never on the payload
bytes, so its
cost-model evaluation (which builds full kernel traces for every candidate
algorithm) is pure and cacheable.  :class:`PlanCache` wraps a planner with
an LRU map over that key and publishes hit/miss/eviction counters to the
observability metrics registry:

* ``serving.plan_cache.hits`` / ``.misses`` / ``.evictions`` — counters;
* ``serving.plan_cache.size`` — gauge (current number of cached plans).

The cache is thread-safe: the serving scheduler consults it from its
dispatcher thread while callers may probe it directly.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import RLock

import numpy as np

from repro import observability as obs
from repro.core.planner import PlanChoice, TopKPlanner
from repro.costmodel.base import UNIFORM_FLOAT, WorkloadProfile
from repro.errors import InvalidParameterError
from repro.gpu.device import DeviceSpec

#: Default maximum number of cached plans; a shape key is ~5 small values,
#: so the default bounds memory while covering any realistic shape mix.
DEFAULT_CAPACITY = 256

PlanKey = tuple[int, int, str, str, str, float]


class PlanCache:
    """LRU-memoized :meth:`TopKPlanner.choose`."""

    def __init__(
        self,
        planner: TopKPlanner | None = None,
        device: DeviceSpec | None = None,
        capacity: int = DEFAULT_CAPACITY,
        metrics: obs.MetricsRegistry | None = None,
        enabled: bool = True,
    ):
        if capacity < 1:
            raise InvalidParameterError(
                f"plan cache capacity must be at least 1, got {capacity}"
            )
        self.planner = planner or TopKPlanner(device)
        self.capacity = capacity
        #: When disabled every lookup replans (and counts as a miss) — the
        #: baseline the serve-bench compares against.
        self.enabled = enabled
        #: Explicit sink for the cache's counters; when None the registry
        #: active in the calling thread (if any) is used instead, so the
        #: cache works both standalone and inside a server.
        self.metrics = metrics
        self._entries: OrderedDict[PlanKey, PlanChoice] = OrderedDict()
        self._lock = RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- keys -------------------------------------------------------------

    def key(
        self,
        n: int,
        k: int,
        dtype: np.dtype,
        profile: WorkloadProfile = UNIFORM_FLOAT,
        recall_target: float = 1.0,
    ) -> PlanKey:
        """The memoization key: everything the planner's decision reads."""
        return (
            int(n),
            int(k),
            str(np.dtype(dtype)),
            profile.name,
            self.planner.device.name,
            float(recall_target),
        )

    # -- the memoized call ------------------------------------------------

    def choose(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
        recall_target: float = 1.0,
    ) -> PlanChoice:
        """:meth:`TopKPlanner.choose`, paid once per distinct shape."""
        key = self.key(n, k, dtype, profile, recall_target)
        with self._lock:
            if self.enabled:
                choice = self._entries.get(key)
                if choice is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self._publish("hits")
                    return choice
            # Planning inside the lock keeps a burst of identical shapes
            # from planning the same key concurrently — the whole point.
            choice = self.planner.choose(
                n, k, dtype, profile, recall_target=recall_target
            )
            self.misses += 1
            self._publish("misses")
            if self.enabled:
                self._entries[key] = choice
                if len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    self._publish("evictions")
            return choice

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
                "hit_rate": self.hit_rate,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- metrics ----------------------------------------------------------

    def _publish(self, event: str) -> None:
        registry = self.metrics if self.metrics is not None else obs.active_metrics()
        if registry is None:
            return
        registry.counter(f"serving.plan_cache.{event}").inc()
        registry.gauge("serving.plan_cache.size").set(len(self._entries))
