"""CPU substrate and baselines (Section 6.7 / Appendix C)."""

from repro.cpu.bitonic_cpu import CpuBitonicTopK, partition_bitonic_topk
from repro.cpu.heap import HeapStats, MinHeap
from repro.cpu.pq_topk import HandPqTopK, StlPqTopK, heap_topk_stream
from repro.cpu.spec import I7_6900, CpuSpec

__all__ = [
    "CpuBitonicTopK",
    "partition_bitonic_topk",
    "HeapStats",
    "MinHeap",
    "HandPqTopK",
    "StlPqTopK",
    "heap_topk_stream",
    "I7_6900",
    "CpuSpec",
]
