"""A binary min-heap written from scratch.

Both CPU baselines (Section 6.7) and the functional path of the per-thread
GPU algorithm (Algorithm 1) are built on this structure.  We implement it
ourselves rather than using :mod:`heapq` so that

* the operation counts the cost models need (pushes, pops, sift swaps) are
  observable, and
* the "hand-optimized PQ" trick — test against the root *before* touching
  the heap, then replace the root in place with a single sift-down — is an
  explicit method (:meth:`MinHeap.push_pop_min`) instead of a pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError


@dataclass
class HeapStats:
    """Operation counters for cost accounting."""

    pushes: int = 0
    pops: int = 0
    replacements: int = 0
    sift_swaps: int = 0
    comparisons: int = 0


class MinHeap:
    """Array-backed binary min-heap of floats.

    Supports the classic operations plus :meth:`push_pop_min`, the combined
    replace-root operation used by top-k maintenance (one sift-down instead
    of a pop followed by a push).
    """

    def __init__(self, items=None, capacity: int | None = None):
        self._items: list[float] = []
        self.stats = HeapStats()
        self._capacity = capacity
        if items is not None:
            self._items = list(items)
            self._heapify()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def capacity(self) -> int | None:
        return self._capacity

    def min(self) -> float:
        """The smallest element; raises on an empty heap."""
        if not self._items:
            raise InvalidParameterError("min() on an empty heap")
        return self._items[0]

    def push(self, value: float) -> None:
        """Insert ``value`` (O(log n))."""
        if self._capacity is not None and len(self._items) >= self._capacity:
            raise InvalidParameterError(
                f"heap is at its capacity of {self._capacity}"
            )
        self.stats.pushes += 1
        self._items.append(value)
        self._sift_up(len(self._items) - 1)

    def pop(self) -> float:
        """Remove and return the smallest element (O(log n))."""
        if not self._items:
            raise InvalidParameterError("pop() on an empty heap")
        self.stats.pops += 1
        smallest = self._items[0]
        last = self._items.pop()
        if self._items:
            self._items[0] = last
            self._sift_down(0)
        return smallest

    def push_pop_min(self, value: float) -> float:
        """Replace the root with ``value`` and return the old root.

        Equivalent to ``pop(); push(value)`` but with a single sift-down —
        the core of the hand-optimized PQ of Section 6.7.
        """
        if not self._items:
            raise InvalidParameterError("push_pop_min() on an empty heap")
        self.stats.replacements += 1
        smallest = self._items[0]
        self._items[0] = value
        self._sift_down(0)
        return smallest

    def drain_sorted(self) -> list[float]:
        """Pop everything; returns elements in ascending order."""
        out = []
        while self._items:
            out.append(self.pop())
        return out

    def as_list(self) -> list[float]:
        """Copy of the backing array (heap order, not sorted)."""
        return list(self._items)

    def _heapify(self) -> None:
        for index in range(len(self._items) // 2 - 1, -1, -1):
            self._sift_down(index)

    def _sift_up(self, index: int) -> None:
        items = self._items
        while index > 0:
            parent = (index - 1) // 2
            self.stats.comparisons += 1
            if items[index] >= items[parent]:
                break
            items[index], items[parent] = items[parent], items[index]
            self.stats.sift_swaps += 1
            index = parent

    def _sift_down(self, index: int) -> None:
        items = self._items
        size = len(items)
        while True:
            left = 2 * index + 1
            right = left + 1
            smallest = index
            if left < size:
                self.stats.comparisons += 1
                if items[left] < items[smallest]:
                    smallest = left
            if right < size:
                self.stats.comparisons += 1
                if items[right] < items[smallest]:
                    smallest = right
            if smallest == index:
                break
            items[index], items[smallest] = items[smallest], items[index]
            self.stats.sift_swaps += 1
            index = smallest
