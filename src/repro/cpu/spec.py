"""CPU hardware model for the Section 6.7 baselines.

The paper's CPU is a single-socket Intel i7-6900 @ 3.20 GHz (8 cores / 16
hardware threads).  The CPU algorithms are modeled with the same
methodology as the GPU ones: a memory-bandwidth term for the scan and a
compute term for the data-dependent work, with the runtime being their
maximum (cores prefetch well enough to overlap the two on a streaming
scan).

Calibration constants come from the paper's reported ratios at k = 32 over
2^29 uniform floats: the hand-optimized PQ is ~3x slower than GPU bitonic
(memory-bound at ~46 GB/s), and on sorted input it is 60x slower (about
44 cycles per heap replacement), with the STL PQ at twice that (pop +
push instead of replace-root).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError

GB = 1_000_000_000


@dataclass(frozen=True)
class CpuSpec:
    """Hardware parameters of the modeled CPU."""

    name: str
    cores: int
    frequency_hz: float
    memory_bandwidth: float
    #: SIMD lanes for 4-byte keys (the Appendix C implementation uses
    #: 128-bit SSE).
    simd_width: int = 4
    #: Cycles per scanned element for the compare-against-root check.
    compare_cost_cycles: float = 2.0
    #: Cycles per heap replacement (compare against root + sift-down).
    heap_replace_cycles: float = 44.0
    #: Cycles per STL-style pop-then-push update.
    stl_update_cycles: float = 88.0
    #: Cycles per (vectorized) bitonic compare-exchange, per SIMD vector.
    bitonic_compare_cycles: float = 16.0

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.frequency_hz <= 0:
            raise InvalidParameterError("cores and frequency must be positive")
        if self.memory_bandwidth <= 0:
            raise InvalidParameterError("memory bandwidth must be positive")

    @property
    def total_cycles_per_second(self) -> float:
        return self.cores * self.frequency_hz

    def scan_time(self, num_bytes: float) -> float:
        """Seconds to stream ``num_bytes`` from main memory."""
        return num_bytes / self.memory_bandwidth

    def compute_time(self, cycles: float) -> float:
        """Seconds to execute ``cycles`` spread over all cores."""
        return cycles / self.total_cycles_per_second


#: The paper's evaluation CPU (Section 6.1).
I7_6900 = CpuSpec(
    name="i7-6900",
    cores=8,
    frequency_hz=3.2e9,
    memory_bandwidth=46 * GB,
)
