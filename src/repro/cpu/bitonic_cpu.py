"""CPU bitonic top-k (Appendix C).

The reductive structure of the GPU algorithm ports directly: the input is
partitioned across cores, each core streams its partition through fixed-size
vectors (2048 elements, sized for L1 residency), runs the SortReducer
function over each vector to produce bitonic runs of length k at a 16:1
reduction, then iterates BitonicReducer phases ping-ponging between two
temporaries until only k elements remain.  Compare-exchanges within a
vector are executed SIMD-style (our numpy step executor stands in for the
128-bit SSE network of the reference implementation).  Padding and chunk
permutation are not needed on the CPU — there is no notion of a bank
conflict (Appendix C).

Cost model: the algorithm is strictly compute-bound on the CPU (its
compute-to-bandwidth ratio is far lower than the GPU's), so its time is
the O(n log^2 k) comparison count divided by the SIMD-parallel core
throughput — and is *distribution independent*, which is why it tracks the
heap methods on sorted input (Figure 15b) while losing badly on uniform
input (Figure 15a).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import TopKAlgorithm, TopKResult, validate_topk_args
from repro.bitonic.network import topk_total_comparisons
from repro.bitonic.operators import local_sort, merge, rebuild
from repro.cpu.spec import I7_6900, CpuSpec
from repro.errors import InvalidParameterError
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec

#: Elements per streaming vector — sized so a vector stays L1-resident
#: (Appendix C uses 2048).
VECTOR_SIZE = 2048

#: Reduction factor per phase, matching the GPU kernels' 16 elements/thread.
REDUCTION_FACTOR = 16


def _next_power_of_two(value: int) -> int:
    return 1 << max(0, (value - 1).bit_length())


def vector_sort_reduce(
    vector: np.ndarray, k: int, payload: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """SortReducer over one vector: unsorted -> k-runs, reduced 16x."""
    local_sort(vector, k, payload)
    reductions = 0
    while reductions < 4 and len(vector) > k:
        vector, payload = merge(vector, k, payload)
        reductions += 1
        if reductions < 4 and len(vector) > k:
            rebuild(vector, k, payload)
    return vector, payload


def vector_bitonic_reduce(
    vector: np.ndarray, k: int, payload: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """BitonicReducer over one vector: k-bitonic runs in, reduced 16x."""
    reductions = 0
    while reductions < 4 and len(vector) > k:
        rebuild(vector, k, payload)
        vector, payload = merge(vector, k, payload)
        reductions += 1
    return vector, payload


def partition_bitonic_topk(
    partition: np.ndarray, k: int, base_index: int
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 5: one core's streaming reduction of its partition."""
    n = _next_power_of_two(max(len(partition), k))
    values = np.full(n, -np.inf if partition.dtype.kind == "f" else
                     np.iinfo(partition.dtype).min, dtype=partition.dtype)
    values[: len(partition)] = partition
    payload = np.full(n, -1, dtype=np.int64)
    payload[: len(partition)] = np.arange(len(partition)) + base_index

    pieces_values: list[np.ndarray] = []
    pieces_payload: list[np.ndarray] = []
    for start in range(0, n, VECTOR_SIZE):
        chunk = values[start : start + VECTOR_SIZE].copy()
        chunk_payload = payload[start : start + VECTOR_SIZE].copy()
        if len(chunk) < max(2 * k, 2):
            pieces_values.append(chunk)
            pieces_payload.append(chunk_payload)
            continue
        reduced, reduced_payload = vector_sort_reduce(chunk, k, chunk_payload)
        pieces_values.append(reduced)
        pieces_payload.append(reduced_payload)
    current = np.concatenate(pieces_values)
    current_payload = np.concatenate(pieces_payload)

    # Cross-vector phases: piece boundaries break the run-direction
    # alternation, so re-establish the k-run format before each merge.
    while len(current) > k:
        if len(current) % (2 * k) != 0:
            pad = 2 * k - (len(current) % (2 * k))
            filler = np.full(pad, current.min(), dtype=current.dtype)
            current = np.concatenate([current, filler])
            current_payload = np.concatenate(
                [current_payload, np.full(pad, -1, dtype=np.int64)]
            )
        local_sort(current, k, current_payload)
        current, current_payload = merge(current, k, current_payload)
    order = np.argsort(current, kind="stable")[::-1]
    return current[order], current_payload[order]


class CpuBitonicTopK(TopKAlgorithm):
    """Appendix C: bitonic top-k on the CPU."""

    name = "cpu-bitonic"

    def __init__(
        self,
        device: DeviceSpec | None = None,
        cpu: CpuSpec = I7_6900,
    ):
        super().__init__(device)
        self.cpu = cpu

    def supports(self, n: int, k: int, dtype: np.dtype) -> bool:
        return k <= 2048

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        validate_topk_args(data, k)
        if k > 2048:
            raise InvalidParameterError("cpu-bitonic supports k <= 2048")
        n = len(data)
        model = model_n or n
        network_k = _next_power_of_two(k)

        partitions = np.array_split(data, self.cpu.cores)
        offsets = np.cumsum([0] + [len(p) for p in partitions[:-1]])
        values_list = []
        payload_list = []
        for partition, offset in zip(partitions, offsets):
            if len(partition) == 0:
                continue
            values, payload = partition_bitonic_topk(
                partition, min(network_k, _next_power_of_two(max(len(partition), 1))),
                int(offset),
            )
            values_list.append(values)
            payload_list.append(payload)
        all_values = np.concatenate(values_list)
        all_payload = np.concatenate(payload_list)
        valid = all_payload >= 0
        all_values = all_values[valid]
        all_payload = all_payload[valid]
        order = np.argsort(all_values, kind="stable")[::-1][:k]

        trace = ExecutionTrace()
        counters = trace.launch("cpu-bitonic")
        comparisons = topk_total_comparisons(_next_power_of_two(model), network_k)
        cycles = comparisons * self.cpu.bitonic_compare_cycles / self.cpu.simd_width
        compute_seconds = self.cpu.compute_time(cycles)
        scan_seconds = self.cpu.scan_time(float(model) * data.dtype.itemsize)
        counters.fixed_seconds = max(compute_seconds, scan_seconds)
        trace.notes["comparisons"] = float(comparisons)
        return self._result(
            all_values[order].copy(), all_payload[order].copy(), trace, k, n, model_n
        )
