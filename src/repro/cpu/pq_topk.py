"""CPU priority-queue top-k baselines (Section 6.7).

Both methods partition the input across the cores, keep a per-core min-heap
of the k best values, and combine the per-core heaps at the end:

* **STL PQ** — the straightforward implementation over a generic priority
  queue: on a hit, ``pop()`` then ``push(x)`` (two sift passes).
* **Hand PQ** — the hand-optimized variant: compare against the heap root
  first and, on a hit, replace the root in place with a single sift-down
  (:meth:`repro.cpu.heap.MinHeap.push_pop_min`).

Both make identical insert *decisions* (they depend only on the heap
minimum), so they share the lockstep functional engine of
:mod:`repro.algorithms.per_thread` with one stream per core; they differ
only in modeled cycles per update.  Exact per-core insert counts are
measured from the run — the quantity behind the paper's observation that
for uniform data each core does only ~500 insertions over 67M elements,
while sorted-ascending input updates on every element (Figure 15b's 60-120x
blowup).
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import TopKAlgorithm, TopKResult, validate_topk_args
from repro.cpu.heap import MinHeap
from repro.cpu.spec import I7_6900, CpuSpec
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec


def _partition_streams(data: np.ndarray, cores: int) -> list[np.ndarray]:
    """Contiguous per-core partitions (the natural CPU layout)."""
    return np.array_split(data, cores)


def heap_topk_stream(
    values: np.ndarray, k: int
) -> tuple[list[float], int]:
    """Reference single-stream heap top-k using the real MinHeap.

    Used by tests to validate the lockstep engine's insert counts; returns
    (top values unsorted, insert count including warm-up).
    """
    heap = MinHeap(capacity=k)
    inserts = 0
    for value in values:
        if len(heap) < k:
            heap.push(float(value))
            inserts += 1
        elif value > heap.min():
            heap.push_pop_min(float(value))
            inserts += 1
    return heap.as_list(), inserts


class _CpuHeapTopK(TopKAlgorithm):
    """Shared machinery of the two PQ baselines."""

    #: Modeled cycles per heap update; set by subclasses.
    update_cycles_attr = "heap_replace_cycles"

    def __init__(
        self,
        device: DeviceSpec | None = None,
        cpu: CpuSpec = I7_6900,
    ):
        super().__init__(device)
        self.cpu = cpu

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        validate_topk_args(data, k)
        n = len(data)
        model = model_n or n

        # Per-core contiguous streams; insert decisions via the per-core
        # running top-k state (decision-equivalent to a real heap).
        cores = self.cpu.cores
        streams = _partition_streams(data, cores)
        offsets = np.cumsum([0] + [len(s) for s in streams[:-1]])
        candidate_values: list[np.ndarray] = []
        candidate_indices: list[np.ndarray] = []
        total_inserts = 0
        for stream, offset in zip(streams, offsets):
            if len(stream) == 0:
                continue
            kk = min(k, len(stream))
            top, inserts = self._stream_topk(stream, kk)
            candidate_values.append(stream[top])
            candidate_indices.append(top + offset)
            total_inserts += inserts
        values = np.concatenate(candidate_values)
        indices = np.concatenate(candidate_indices)
        order = np.argsort(values, kind="stable")[::-1][:k]

        trace = self._build_trace(model, n, k, data.dtype.itemsize, total_inserts)
        return self._result(
            values[order].copy(), indices[order].copy(), trace, k, n, model_n
        )

    @staticmethod
    def _stream_topk(stream: np.ndarray, k: int) -> tuple[np.ndarray, int]:
        """Exact top-k positions of one stream plus its insert count.

        The running threshold is the k-th largest of the prefix; an element
        inserts when it beats the threshold.  Vectorized chunk-wise: chunks
        whose maximum stays below the entering threshold are skipped (the
        common case for uniform data), others are resolved element-wise.
        """
        state = np.full(k, -np.inf)
        state_pos = np.full(k, -1, dtype=np.int64)
        fill = min(k, len(stream))
        state[:fill] = stream[:fill]
        state_pos[:fill] = np.arange(fill)
        inserts = fill
        chunk = 4096
        position = fill
        while position < len(stream):
            block = stream[position : position + chunk]
            threshold = state.min()
            if block.max() <= threshold:
                position += len(block)
                continue
            for offset in np.flatnonzero(block > threshold):
                value = block[offset]
                slot = state.argmin()
                if value > state[slot]:
                    state[slot] = value
                    state_pos[slot] = position + offset
                    inserts += 1
            position += len(block)
        return state_pos[state_pos >= 0], inserts

    def _build_trace(
        self, model_n: int, functional_n: int, k: int, width: int, inserts: int
    ) -> ExecutionTrace:
        trace = ExecutionTrace()
        counters = trace.launch(f"{self.name}-scan")
        scan_seconds = self.cpu.scan_time(float(model_n) * width)
        model_inserts = self._extrapolate_inserts(
            inserts, functional_n, model_n, k
        )
        update_cycles = getattr(self.cpu, self.update_cycles_attr)
        compute_cycles = (
            float(model_n) * self.cpu.compare_cost_cycles
            + model_inserts * update_cycles * max(1.0, math.log2(max(k, 2)) / 5.0)
        )
        compute_seconds = self.cpu.compute_time(compute_cycles)
        seconds = max(scan_seconds, compute_seconds)
        counters.fixed_seconds = seconds
        trace.notes["cpu_seconds"] = seconds
        trace.notes["inserts"] = model_inserts
        return trace

    def _extrapolate_inserts(
        self, inserts: int, functional_n: int, model_n: int, k: int
    ) -> float:
        """Scale measured insert counts from functional to modeled size.

        Insert behaviour has two regimes: adversarial streams (sorted
        ascending) insert on every element, growing linearly with the
        stream, while exchangeable streams insert with probability k/i at
        position i, growing as k (1 + ln(m/k)).  We detect the regime from
        the measured rate and scale with the matching law.
        """
        if model_n <= functional_n:
            return float(inserts) * model_n / max(1, functional_n)
        cores = self.cpu.cores
        stream_func = max(1, functional_n // cores)
        stream_model = max(1, model_n // cores)
        per_stream = inserts / cores
        if per_stream >= 0.5 * stream_func:
            # Adversarial regime: inserts track the stream length.
            return float(inserts) * model_n / max(1, functional_n)
        expected_func = k * (1.0 + math.log(max(stream_func, k) / k))
        expected_model = k * (1.0 + math.log(max(stream_model, k) / k))
        return float(inserts) * expected_model / max(expected_func, 1.0)


class StlPqTopK(_CpuHeapTopK):
    """CPU baseline using a generic (STL-style) priority queue."""

    name = "cpu-stl-pq"
    update_cycles_attr = "stl_update_cycles"


class HandPqTopK(_CpuHeapTopK):
    """CPU baseline using the hand-optimized replace-root heap."""

    name = "cpu-hand-pq"
    update_cycles_attr = "heap_replace_cycles"
