"""Scatter-gather execution of sharded top-k plans.

:class:`ShardedTopK` runs one top-k as N partition-parallel shards on N
*simulated* devices — a thread pool over the existing GPU simulator —
then k-way-merges the per-shard candidates into the exact global answer.

Execution proceeds in phases so fault injection stays deterministic:

1. **Launch admission** (coordinator thread, sequential): one
   ``"device-launch"`` fault point per shard, in shard order.  A shard
   whose launch is lost (an injected :class:`DeviceLostError`) is marked
   for redistribution; if every launch is lost the typed error surfaces
   — and composes with the surrounding :class:`~repro.plan.nodes.Fallback`
   chain exactly like any other device loss.
2. **Concurrent compute** (worker pool): surviving shards run in a
   :class:`~concurrent.futures.ThreadPoolExecutor`.  Worker threads see
   fresh context-var state — no fault injector and no tracer — so the
   functional compute is deterministic regardless of thread scheduling;
   all injection and all span emission stays on the coordinator.
3. **Redistribution** (admission sequential, compute pooled): each lost
   shard's range is split across the survivors; a survivor that is lost
   mid-recovery re-queues its piece, cascading until no device remains.
4. **Gather + merge** (coordinator): candidates cross simulated PCIe and
   a final merge kernel reproduces the exact global order.

Functional answers come from the canonical total order (the reference
oracle: value descending, lower global row index first, NaN last) — the
order the k-way merge reproduces, which is what makes sharded results
bit-equal to single-device results even on NaN-laden inputs where
comparison networks are documented to be unpredictable.  The per-shard
*inner kernel* (the planner's winner at per-shard scale) still runs on
every shard's slice: its trace is what the concurrent phase accounts.

Like :class:`~repro.hybrid.multi_gpu.MultiGpuTopK`, the input is assumed
device-resident and pre-partitioned — no PCIe scatter is charged; only
candidates (k values + row ids per shard) cross the bus at gather time.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.algorithms.base import (
    TopKAlgorithm,
    TopKResult,
    reference_topk,
    validate_topk_args,
)
from repro.algorithms.registry import create
from repro.errors import DeviceLostError
from repro.gpu import faults
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec
from repro.gpu.timing import trace_time
from repro.sharding.merge import merge_topk
from repro.sharding.partition import _validate_shards, partition_ranges

#: Default simulated device count for a bare (registry-built) instance.
DEFAULT_SHARDS = 2

#: Row-id bytes per gathered candidate (the 4-byte id of Section 6.6).
ROW_ID_BYTES = 4

#: Kernel names of the coordinator's own trace.
CONCURRENT_KERNEL = "shard-topk-concurrent"
REDISTRIBUTE_KERNEL = "shard-redistribute"
GATHER_KERNEL = "shard-gather"
MERGE_KERNEL = "shard-merge"


@dataclass
class ShardRun:
    """One shard's (or recovery piece's) finished work."""

    #: The simulated device that ran the piece.
    index: int
    start: int
    stop: int
    values: np.ndarray
    #: Global row indices (local indices + range start).
    indices: np.ndarray
    #: Simulated seconds of the shard's inner kernel trace.
    seconds: float


class ShardedTopK(TopKAlgorithm):
    """Partition-parallel top-k across N simulated devices."""

    name = "sharded"

    def __init__(
        self,
        device: DeviceSpec | None = None,
        shards: int = DEFAULT_SHARDS,
        inner: str | None = None,
        flags=None,
    ):
        super().__init__(device)
        self.shards = _validate_shards(shards)
        #: Per-shard kernel name; None resolves the planner's winner at
        #: per-shard scale on first use.
        self.inner = inner
        self.flags = flags

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        validate_topk_args(data, k)
        n = len(data)
        model = model_n or n
        # A shard must hold at least one row; a bare instance on a tiny
        # input degrades to fewer effective shards instead of erroring.
        shards = min(self.shards, n)
        ranges = partition_ranges(n, shards)
        inner_name = self._resolve_inner(
            max(1, -(-model // shards)), min(k, n // shards), data.dtype
        )

        # Phase 1: sequential launch admission on the coordinator thread.
        lost: list[tuple[int, int, int]] = []
        alive: list[tuple[int, int, int]] = []
        for index, (start, stop) in enumerate(ranges):
            try:
                faults.fault_point("device-launch", f"shard#{index}")
            except DeviceLostError:
                lost.append((index, start, stop))
            else:
                alive.append((index, start, stop))
        if not alive:
            raise DeviceLostError(
                f"all {shards} shards lost at launch; no device left to "
                f"redistribute the work to",
                site="device-launch",
            )

        # Phase 2: surviving shards compute concurrently in the pool.
        primary = self._run_shards(data, k, model, n, inner_name, alive)
        runs = list(primary)
        redistributed = 0
        recompute_seconds = 0.0
        if lost:
            recovered, redistributed, recompute_seconds = self._redistribute(
                data, k, model, n, inner_name, lost,
                [index for index, _, _ in alive],
            )
            runs.extend(recovered)

        values = np.concatenate([run.values for run in runs])
        rows = np.concatenate([run.indices for run in runs])
        merged_values, merged_rows = merge_topk(values, rows, k)

        trace = self._build_trace(
            data, k, model, shards, primary, lost, redistributed,
            recompute_seconds, len(values),
        )
        self._observe(shards, runs, lost)
        return self._result(
            merged_values.copy(), merged_rows.copy(), trace, k, n, model
        )

    # -- shard compute ----------------------------------------------------

    def _resolve_inner(self, shard_model: int, local_k: int, dtype) -> str:
        """The per-shard kernel: pinned, or the planner's winner at
        per-shard scale (so large k routes past the comparison network's
        width limit exactly as a single device of that size would plan)."""
        local_k = min(max(1, local_k), shard_model)
        if self.inner is not None:
            probe = self._make_inner(self.inner)
            if probe.supports(shard_model, local_k, np.dtype(dtype)):
                return self.inner
        from repro.core.planner import TopKPlanner

        with obs.suspended(), faults.suspended():
            plan = TopKPlanner(self.device).choose(
                shard_model, local_k, np.dtype(dtype)
            )
        return plan.algorithm

    def _make_inner(self, name: str) -> TopKAlgorithm:
        if name == "bitonic" and self.flags is not None:
            from repro.bitonic.topk import BitonicTopK

            return BitonicTopK(self.device, self.flags)
        return create(name, self.device)

    def _run_shards(
        self,
        data: np.ndarray,
        k: int,
        model: int,
        n: int,
        inner_name: str,
        pieces: list[tuple[int, int, int]],
    ) -> list[ShardRun]:
        """Run every ``(index, start, stop)`` piece in the worker pool.

        Workers are functionally pure: fresh thread context means no
        injector and no tracer fire off the coordinator, and
        ``pool.map`` preserves submission order, so results are
        deterministic under any scheduling.
        """

        def compute(piece: tuple[int, int, int]) -> ShardRun:
            index, start, stop = piece
            slice_ = data[start:stop]
            local_k = min(k, len(slice_))
            shard_model = max(local_k, int(round(model * len(slice_) / n)))
            values, local_indices = reference_topk(slice_, local_k)
            inner = self._make_inner(inner_name)
            traced = inner.run(slice_, local_k, model_n=shard_model)
            return ShardRun(
                index=index,
                start=start,
                stop=stop,
                values=values,
                indices=local_indices + start,
                seconds=trace_time(traced.trace, self.device).total,
            )

        with ThreadPoolExecutor(max_workers=min(len(pieces), 16)) as pool:
            return list(pool.map(compute, pieces))

    # -- shard-loss recovery ----------------------------------------------

    def _redistribute(
        self,
        data: np.ndarray,
        k: int,
        model: int,
        n: int,
        inner_name: str,
        lost: list[tuple[int, int, int]],
        alive: list[int],
    ) -> tuple[list[ShardRun], int, float]:
        """Split every lost shard's range across the survivors.

        Admission is sequential on the coordinator (deterministic fault
        schedule); the admitted pieces then compute in the pool.  A
        survivor lost mid-recovery re-queues its piece, so recovery
        tolerates cascading losses until no device remains.  Returns the
        recovered runs, the piece count, and the recovery's recompute
        seconds (the busiest survivor's extra work, which the trace
        accounts).
        """
        pending: deque[tuple[int, int]] = deque()
        for _, start, stop in lost:
            bounds = np.linspace(start, stop, len(alive) + 1).astype(int)
            for piece_start, piece_stop in zip(bounds, bounds[1:]):
                if piece_stop > piece_start:
                    pending.append((int(piece_start), int(piece_stop)))
        assignments: list[tuple[int, int, int]] = []
        rotation = 0
        while pending:
            if not alive:
                raise DeviceLostError(
                    "all shards lost during redistribution",
                    site="device-launch",
                )
            piece_start, piece_stop = pending.popleft()
            target = alive[rotation % len(alive)]
            rotation += 1
            try:
                faults.fault_point(
                    "device-launch", f"shard#{target}:redistribute"
                )
            except DeviceLostError:
                alive.remove(target)
                pending.append((piece_start, piece_stop))
                continue
            assignments.append((target, piece_start, piece_stop))
        recovered = self._run_shards(
            data, k, model, n, inner_name, assignments
        )
        per_target: dict[int, float] = {}
        for run in recovered:
            per_target[run.index] = per_target.get(run.index, 0.0) + run.seconds
        recompute = max(per_target.values(), default=0.0)
        return recovered, len(recovered), recompute

    # -- accounting -------------------------------------------------------

    def _build_trace(
        self,
        data: np.ndarray,
        k: int,
        model: int,
        shards: int,
        primary: list[ShardRun],
        lost: list[tuple[int, int, int]],
        redistributed: int,
        recompute_seconds: float,
        num_candidates: int,
    ) -> ExecutionTrace:
        """The coordinator's own trace.

        The concurrent kernel's time is the *slowest primary shard* (the
        devices run in parallel); recovery rides in a separate
        redistribute kernel so a fault-free run's trace never pays for
        it.  ``trace.launch`` is the standard ``"kernel-launch"``
        injection site, so the coordinator itself stays fault-injectable
        and composes with the resilient executor's retry loop.
        """
        n = len(data)
        itemsize = data.dtype.itemsize
        candidate_bytes = float(num_candidates) * (itemsize + ROW_ID_BYTES)
        trace = ExecutionTrace()
        concurrent = trace.launch(CONCURRENT_KERNEL)
        concurrent.fixed_seconds = max(run.seconds for run in primary)
        if lost:
            lost_rows = sum(stop - start for _, start, stop in lost)
            lost_bytes = float(model) * (lost_rows / n) * itemsize
            redistribute = trace.launch(REDISTRIBUTE_KERNEL)
            redistribute.fixed_seconds = (
                lost_bytes / self.device.pcie_bandwidth + recompute_seconds
            )
        gather = trace.launch(GATHER_KERNEL)
        gather.fixed_seconds = candidate_bytes / self.device.pcie_bandwidth
        merge = trace.launch(MERGE_KERNEL)
        merge.add_global_read(candidate_bytes)
        merge.add_global_write(float(k) * (itemsize + ROW_ID_BYTES))
        trace.notes["sharding.shards"] = float(shards)
        trace.notes["sharding.shards_lost"] = float(len(lost))
        trace.notes["sharding.redistributed"] = float(redistributed)
        trace.notes["sharding.max_shard_ms"] = concurrent.fixed_seconds * 1e3
        return trace

    def _observe(
        self,
        shards: int,
        runs: list[ShardRun],
        lost: list[tuple[int, int, int]],
    ) -> None:
        """Per-shard spans and metrics, emitted post-hoc in shard order
        from the coordinator (workers never touch the tracer), so they
        nest under the wrapper's ``algorithm:sharded`` span."""
        for run in sorted(runs, key=lambda r: (r.index, r.start)):
            with obs.span(
                f"shard:{run.index}",
                category="shard",
                rows=run.stop - run.start,
                start=run.start,
                stop=run.stop,
            ) as span:
                span.set(simulated_ms=run.seconds * 1e3)
        registry = obs.active_metrics()
        if registry is not None:
            registry.gauge("sharding.shards").set(shards)
            registry.counter("sharding.shards_executed").inc(len(runs))
            if lost:
                registry.counter("resilience.devices_lost").inc(len(lost))
