"""Partitioning rule: one query becomes N contiguous Scan -> TopK shards.

The rule is deliberately simple — contiguous, balanced row ranges — so a
shard's global row indices are recoverable from its local indices by
adding the range start, and the k-way merge's tie-breaking (lower global
index first) reproduces the single-device answer bit for bit.

``build_sharded_plan`` produces the plan-IR tree the planner emits and
the engine/registry execute: a :class:`~repro.plan.nodes.Merge` over one
``TopK(Scan)`` subtree per shard, each Scan's source carrying its row
range (``vector[0:1024)``), which is also what EXPLAIN renders.
"""

from __future__ import annotations

import re

import numpy as np

from repro.errors import InvalidParameterError
from repro.plan.nodes import Merge, Scan, TopK

#: ``source[start:stop)`` — the shard-range suffix of a partitioned Scan.
_RANGE = re.compile(r"\[(\d+):(\d+)\)$")


def _validate_shards(shards) -> int:
    if isinstance(shards, bool) or not isinstance(shards, (int, np.integer)):
        raise InvalidParameterError(
            f"shards must be an integer, got {type(shards).__name__}"
        )
    if shards < 1:
        raise InvalidParameterError(f"shards must be at least 1, got {shards}")
    return int(shards)


def partition_ranges(n: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``[start, stop)`` row ranges for ``n`` rows.

    Sizes differ by at most one row (the first ``n % shards`` ranges get
    the extra row), every range is non-empty, and the ranges tile
    ``[0, n)`` exactly.  Raises :class:`InvalidParameterError` for a
    non-integer or non-positive shard count, and when ``shards > n``
    (a shard must hold at least one row).
    """
    shards = _validate_shards(shards)
    if n < 1:
        raise InvalidParameterError(f"cannot partition n = {n} rows")
    if shards > n:
        raise InvalidParameterError(
            f"cannot split n = {n} rows into {shards} shards; "
            f"every shard needs at least one row"
        )
    base, extra = divmod(n, shards)
    ranges: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def shard_source(source: str, start: int, stop: int) -> str:
    """The partitioned Scan source label: ``source[start:stop)``."""
    return f"{source}[{start}:{stop})"


def parse_shard_range(source: str) -> tuple[int, int] | None:
    """The ``(start, stop)`` range of a partitioned Scan source, or None."""
    match = _RANGE.search(source)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2))


def build_sharded_plan(
    n: int,
    k: int,
    *,
    shards: int,
    dtype: str = "float32",
    algorithm: str = "bitonic",
    source: str = "vector",
    predicted_seconds: float | None = None,
    per_shard_seconds: float | None = None,
) -> Merge:
    """The sharded plan tree: ``Merge`` over N partitioned ``Scan -> TopK``.

    ``algorithm`` is the per-shard inner kernel (the planner's winner at
    per-shard scale); ``source`` names the partitioned input (a table or
    the raw-vector sentinel), each shard's Scan carrying its row range.
    """
    ranges = partition_ranges(n, shards)
    inputs = []
    for start, stop in ranges:
        rows = stop - start
        inputs.append(
            TopK(
                child=Scan(
                    source=shard_source(source, start, stop),
                    rows=rows,
                    dtype=dtype,
                ),
                k=min(k, rows),
                n=rows,
                dtype=dtype,
                algorithm=algorithm,
                predicted_seconds=per_shard_seconds,
            )
        )
    return Merge(
        inputs=tuple(inputs),
        k=k,
        algorithm="sharded",
        predicted_seconds=predicted_seconds,
    )
