"""The sharding scaling benchmark behind ``repro shard-bench``.

Runs one fixed top-k workload at every shard count in the grid (1, 2, 4,
8 by default) through :class:`~repro.sharding.executor.ShardedTopK` and
reports, per point:

* **simulated milliseconds** of the whole sharded execution — the
  deterministic figure CI gates on (wall clock is never reported, let
  alone gated);
* the **speedup** over the single-shard point;
* the slowest shard's **critical-path milliseconds** (the concurrent
  kernel), which shows where scaling flattens as the gather/merge
  overhead stops amortizing;
* whether the result is **bit-equal** to the single-device reference —
  the exactness claim, checked on every point.

The acceptance gate mirrors the issue's criterion: simulated time must
improve *monotonically* from 1 shard through :data:`GATE_MAX_SHARDS`
(larger counts are reported but not gated — past the knee the fixed
per-shard overheads may win).  CI additionally gates every point's
simulated milliseconds against the committed
``benchmarks/baselines/BENCH_sharding.json`` via :func:`check_baseline`.

Functional arrays are capped at ``functional_cap`` elements (exactness
is checked on the functional payload; the trace models the full
``model n`` regardless), so the curve stays fast enough for CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import reference_topk
from repro.bench.common import BASELINE_TOLERANCE, drifted
from repro.errors import InvalidParameterError
from repro.gpu.device import DeviceSpec, get_device
from repro.gpu.timing import trace_time
from repro.sharding.executor import ShardedTopK

#: JSON schema tag of a serialized report.
REPORT_FORMAT = "repro-sharding-bench"
REPORT_VERSION = 1

#: The scaling gate's upper end: simulated time must strictly improve at
#: every step from 1 shard through this count.
GATE_MAX_SHARDS = 4


@dataclass
class ShardWorkload:
    """One fixed ``(model n, k)`` workload swept across shard counts."""

    model_n: int = 1 << 26
    k: int = 256
    shard_counts: tuple = (1, 2, 4, 8)
    functional_cap: int = 1 << 19
    seed: int = 0

    def __post_init__(self) -> None:
        self.model_n = int(self.model_n)
        self.k = int(self.k)
        self.shard_counts = tuple(int(s) for s in self.shard_counts)
        self.functional_cap = int(self.functional_cap)
        if self.model_n < 1 or self.k < 1:
            raise InvalidParameterError(
                f"invalid workload shape: model_n = {self.model_n}, "
                f"k = {self.k}"
            )
        if self.k > self.model_n:
            raise InvalidParameterError(
                f"k = {self.k} exceeds model_n = {self.model_n}"
            )
        if not self.shard_counts:
            raise InvalidParameterError(
                "the curve needs at least one shard count"
            )
        if min(self.shard_counts) < 1:
            raise InvalidParameterError(
                f"shard counts must be positive, got {self.shard_counts}"
            )
        if list(self.shard_counts) != sorted(set(self.shard_counts)):
            raise InvalidParameterError(
                f"shard counts must be strictly increasing, "
                f"got {self.shard_counts}"
            )
        functional_n = min(self.model_n, self.functional_cap)
        if functional_n < self.k:
            raise InvalidParameterError(
                f"functional_cap {self.functional_cap} is smaller than "
                f"k = {self.k}"
            )
        if functional_n < max(self.shard_counts):
            raise InvalidParameterError(
                f"functional payload of {functional_n} rows cannot be split "
                f"into {max(self.shard_counts)} shards"
            )

    def data(self) -> np.ndarray:
        """The functional payload, seeded by the workload coordinates so a
        re-run reproduces the curve exactly."""
        rng = np.random.default_rng([self.seed, self.model_n, self.k])
        functional_n = min(self.model_n, self.functional_cap)
        return rng.random(functional_n, dtype=np.float32)

    def to_dict(self) -> dict:
        return {
            "model_n": self.model_n,
            "k": self.k,
            "shard_counts": list(self.shard_counts),
            "functional_cap": self.functional_cap,
            "seed": self.seed,
        }


@dataclass
class ShardPoint:
    """One shard count's measurement on the workload."""

    shards: int
    simulated_ms: float
    #: The slowest shard's inner-kernel milliseconds (the critical path).
    max_shard_ms: float
    #: Bit-equality against the single-device reference oracle.
    identical: bool

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "simulated_ms": self.simulated_ms,
            "max_shard_ms": self.max_shard_ms,
            "identical": self.identical,
        }


@dataclass
class ShardBenchReport:
    """The scaling curve plus the monotonic-improvement verdict."""

    workload: ShardWorkload
    device: str
    points: list = field(default_factory=list)

    @property
    def identical(self) -> bool:
        """Every point bit-equal to the single-device reference."""
        return all(point.identical for point in self.points)

    def gated_points(self) -> list:
        """The prefix of the curve the monotonic gate applies to."""
        return [p for p in self.points if p.shards <= GATE_MAX_SHARDS]

    @property
    def monotonic(self) -> bool:
        """Simulated time strictly improves at every gated step."""
        gated = self.gated_points()
        return all(
            later.simulated_ms < earlier.simulated_ms
            for earlier, later in zip(gated, gated[1:])
        )

    @property
    def passed(self) -> bool:
        return self.identical and self.monotonic

    def speedup(self, point: ShardPoint) -> float:
        base = self.points[0].simulated_ms if self.points else 0.0
        return base / point.simulated_ms if point.simulated_ms > 0 else float("inf")

    def to_dict(self) -> dict:
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "workload": self.workload.to_dict(),
            "device": self.device,
            "points": [point.to_dict() for point in self.points],
            "gates": {
                "monotonic_through": GATE_MAX_SHARDS,
                "identical": True,
            },
            "monotonic": self.monotonic,
            "identical": self.identical,
            "passed": self.passed,
        }

    def render(self) -> str:
        lines = [
            f"device       : {self.device}",
            f"workload     : model n = {self.workload.model_n}, "
            f"k = {self.workload.k}, seed = {self.workload.seed}",
            "",
            f"{'shards':>7} {'sim ms':>10} {'speedup':>8} "
            f"{'max shard ms':>13} {'exact':>6}",
        ]
        for point in self.points:
            gated = " *" if point.shards <= GATE_MAX_SHARDS else ""
            lines.append(
                f"{point.shards:>7} {point.simulated_ms:>10.4f} "
                f"{self.speedup(point):>7.2f}x {point.max_shard_ms:>13.4f} "
                f"{'yes' if point.identical else 'NO':>6}{gated}"
            )
        verdict = "PASS" if self.passed else "FAIL"
        lines.append("")
        lines.append(
            f"gate (*)     : bit-equal everywhere and strictly faster at "
            f"every step through {GATE_MAX_SHARDS} shards -> {verdict}"
        )
        return "\n".join(lines)


def run_sharding_benchmark(
    workload: ShardWorkload | None = None,
    device: DeviceSpec | None = None,
) -> ShardBenchReport:
    """Run the scaling curve and assemble the report."""
    workload = workload or ShardWorkload()
    device = device or get_device()
    data = workload.data()
    oracle_values, oracle_indices = reference_topk(data, workload.k)
    report = ShardBenchReport(workload=workload, device=device.name)
    for shards in workload.shard_counts:
        result = ShardedTopK(device, shards=shards).run(
            data, workload.k, model_n=workload.model_n
        )
        report.points.append(
            ShardPoint(
                shards=shards,
                simulated_ms=trace_time(result.trace, device).total_ms,
                max_shard_ms=result.trace.notes.get("sharding.max_shard_ms", 0.0),
                identical=bool(
                    np.array_equal(result.values, oracle_values, equal_nan=True)
                    and np.array_equal(result.indices, oracle_indices)
                ),
            )
        )
    return report


def check_baseline(report: ShardBenchReport, baseline: dict) -> list[str]:
    """Regression-gate a report against a committed baseline.

    Returns the list of violations (empty = pass).  Only deterministic
    quantities are gated — per-point simulated milliseconds (within
    :data:`BASELINE_TOLERANCE`), exactness, and the monotonic verdict —
    never wall clock.
    """
    if baseline.get("format") != REPORT_FORMAT:
        return [f"baseline is not a {REPORT_FORMAT} document"]
    if baseline.get("workload") != report.workload.to_dict():
        return [
            "baseline workload differs from the benchmarked curve: "
            f"{baseline.get('workload')} vs {report.workload.to_dict()}"
        ]
    problems = []
    measured_points = {p.shards: p for p in report.points}
    for expected in baseline.get("points", []):
        shards = expected["shards"]
        point = measured_points.get(shards)
        if point is None:
            problems.append(f"curve is missing baseline point shards={shards}")
            continue
        label = f"point (shards={shards})"
        expected_ms = expected["simulated_ms"]
        if drifted(point.simulated_ms, expected_ms):
            problems.append(
                f"{label} simulated_ms {point.simulated_ms:.4f} deviates "
                f"more than {BASELINE_TOLERANCE:.0%} from baseline "
                f"{expected_ms:.4f}"
            )
        if expected.get("identical", True) and not point.identical:
            problems.append(
                f"{label} is no longer bit-equal to the reference"
            )
    if baseline.get("passed") and not report.passed:
        problems.append(
            "scaling gate regressed: baseline was bit-equal with "
            f"monotonic improvement through {GATE_MAX_SHARDS} shards, "
            "this run is not"
        )
    return problems
