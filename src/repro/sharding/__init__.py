"""``repro.sharding``: partition-parallel top-k across simulated devices.

The paper's top-k operator is *order-safe to split*: the global top-k
under the library's canonical total order (value descending, lower row
index first) is always contained in the union of per-partition top-k
results under the same order.  This package exploits that property
end-to-end:

* :mod:`~repro.sharding.partition` — split one large query into N
  contiguous ``Scan -> TopK`` subtrees joined by a
  :class:`~repro.plan.nodes.Merge` node;
* :mod:`~repro.sharding.merge` — the deterministic k-way merge that
  reproduces the exact global order from per-shard candidates;
* :mod:`~repro.sharding.executor` — :class:`ShardedTopK`, the
  scatter-gather executor running shards concurrently across N simulated
  devices (a thread pool over the GPU simulator) with per-shard fault
  injection and shard-loss redistribution;
* :mod:`~repro.sharding.bench` — the ``repro shard-bench`` scaling
  curve (1/2/4/8 shards) gated against a committed baseline in CI.
"""

from repro.sharding.bench import (
    ShardBenchReport,
    ShardWorkload,
    check_baseline,
    run_sharding_benchmark,
)
from repro.sharding.executor import DEFAULT_SHARDS, ShardedTopK
from repro.sharding.merge import merge_topk
from repro.sharding.partition import (
    build_sharded_plan,
    parse_shard_range,
    partition_ranges,
    shard_source,
)

__all__ = [
    "DEFAULT_SHARDS",
    "ShardBenchReport",
    "ShardWorkload",
    "ShardedTopK",
    "build_sharded_plan",
    "check_baseline",
    "merge_topk",
    "parse_shard_range",
    "partition_ranges",
    "run_sharding_benchmark",
    "shard_source",
]
