"""Deterministic k-way merge of per-shard top-k candidates.

Merge semantics are *exactly* the library's canonical total order — the
one :func:`repro.algorithms.base.reference_topk` defines and every exact
algorithm reproduces:

* values descending (IEEE-754 NaN ordered last for floats);
* ties broken by lower **global** row index first.

Because shards are contiguous row ranges, adding each range's start to
its local indices preserves the intra-shard order, so merging the
per-shard candidates under this order is bit-equal to running the
single-device selection on the whole input — the order-safety property
that makes top-k shardable at all.
"""

from __future__ import annotations

import numpy as np


def descending_keys(values: np.ndarray) -> np.ndarray:
    """Sort keys whose *ascending* order is the canonical descending value
    order.  Mirrors the key transform of ``reference_topk`` exactly:
    negation for floats (NaN stays NaN and sorts last), complement for
    uint64 (negation would wrap), widened negation for other integers.
    """
    if values.dtype.kind == "f":
        return -values
    if values.dtype == np.uint64:
        return np.iinfo(np.uint64).max - values
    return -values.astype(np.int64)


def merge_topk(
    values: np.ndarray, indices: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """The global top-k of concatenated per-shard candidates.

    ``values``/``indices`` are the gathered candidates (global row
    indices); returns ``(values, indices)`` of the k winners in canonical
    order.  ``np.lexsort`` keys: primary = descending-value transform,
    secondary = global index — a stable two-key sort, so equal values
    (and NaN groups) resolve to the lower global row, matching the
    single-device reference bit for bit.
    """
    order = np.lexsort((indices, descending_keys(values)))[:k]
    return values[order], indices[order]
