"""The streaming benchmark behind ``repro stream-bench``.

Drives one seeded tweet stream through both maintenance arms of each
streaming semantics and reports, per arm:

* **bit-equality on every tick** — the incremental maintainer (summary
  ring for the sliding window, carried candidate set for decay) must
  produce, tick for tick, exactly the answer of recomputing from the
  raw live rows: same values/scores bit pattern, same global row ids,
  across warm-up, steady state, and window evictions;
* **simulated milliseconds** — the steady-state per-tick maintenance
  cost under the Section 7 timing model, the deterministic figure CI
  gates on;
* the **incremental speedup** — recompute-per-tick over incremental at
  steady state, which must clear :data:`GATE_SPEEDUP` at the headline
  configuration (window 2^24 rows as 16 chunks of 2^20, k 64: the cost
  model predicts ~window/chunk, so 2x has generous margin).

Like the sharding bench, functional scale and model scale are decoupled:
bit-equality runs the real maintainers over small seeded chunks
(``chunk_rows``), while the simulated tick costs are priced at the
headline ``model_chunk_rows`` — big enough that memory traffic, not
kernel-launch overhead, dominates each tick.

CI gates every number against the committed
``benchmarks/baselines/BENCH_streaming.json`` via :func:`check_baseline`
(shared tolerance from :mod:`repro.bench.common`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.common import BASELINE_TOLERANCE, drifted
from repro.costmodel.streaming_model import StreamingModel
from repro.data.stream import stream_chunk
from repro.errors import InvalidParameterError
from repro.gpu.device import DeviceSpec, get_device
from repro.gpu.timing import trace_time
from repro.streaming.window import DecayedTopK, StreamChunk, WindowTopK

#: JSON schema tag of a serialized report.
REPORT_FORMAT = "repro-streaming-bench"
REPORT_VERSION = 1

#: The headline gate: incremental maintenance must be at least this much
#: faster (simulated) than recompute-per-tick on the window workload.
GATE_SPEEDUP = 2.0


@dataclass
class StreamWorkload:
    """One seeded stream driven through every maintenance arm.

    ``chunk_rows`` is the *functional* chunk size the equality oracle
    maintains; ``model_chunk_rows`` is the *modeled* chunk size the
    simulated tick costs are priced at (the window at model scale is
    ``window_chunks * model_chunk_rows`` rows).
    """

    k: int = 64
    chunk_rows: int = 1 << 12
    model_chunk_rows: int = 1 << 20
    window_chunks: int = 16
    ticks: int = 48
    decay: float = 0.9
    shards: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        self.k = int(self.k)
        self.chunk_rows = int(self.chunk_rows)
        self.model_chunk_rows = int(self.model_chunk_rows)
        self.window_chunks = int(self.window_chunks)
        self.ticks = int(self.ticks)
        self.shards = int(self.shards)
        if self.k < 1 or self.chunk_rows < 1:
            raise InvalidParameterError(
                f"invalid workload shape: k = {self.k}, "
                f"chunk_rows = {self.chunk_rows}"
            )
        if self.k > self.chunk_rows:
            raise InvalidParameterError(
                f"k = {self.k} exceeds chunk_rows = {self.chunk_rows}"
            )
        if self.model_chunk_rows < self.chunk_rows:
            raise InvalidParameterError(
                f"model_chunk_rows ({self.model_chunk_rows}) must be at "
                f"least the functional chunk_rows ({self.chunk_rows})"
            )
        if self.window_chunks < 1:
            raise InvalidParameterError(
                f"window_chunks must be at least 1, got {self.window_chunks}"
            )
        if self.ticks < self.window_chunks:
            raise InvalidParameterError(
                f"ticks ({self.ticks}) must cover at least one full window "
                f"({self.window_chunks} chunks) so evictions are exercised"
            )
        if not 0.0 < self.decay <= 1.0:
            raise InvalidParameterError(
                f"decay must be in (0, 1], got {self.decay}"
            )
        if self.shards < 1:
            raise InvalidParameterError(
                f"shards must be at least 1, got {self.shards}"
            )

    @property
    def window(self) -> int:
        """Functional window length in rows."""
        return self.window_chunks * self.chunk_rows

    @property
    def model_window(self) -> int:
        """Modeled window length in rows (the priced configuration)."""
        return self.window_chunks * self.model_chunk_rows

    def chunks(self) -> list[StreamChunk]:
        """The stream's first ``ticks`` chunks (score + global row id)."""
        out = []
        for tick in range(self.ticks):
            chunk = stream_chunk(tick, self.chunk_rows, self.seed)
            out.append(
                StreamChunk(values=chunk["score"], gids=chunk["id"])
            )
        return out

    def to_dict(self) -> dict:
        return {
            "k": self.k,
            "chunk_rows": self.chunk_rows,
            "model_chunk_rows": self.model_chunk_rows,
            "window_chunks": self.window_chunks,
            "ticks": self.ticks,
            "decay": self.decay,
            "shards": self.shards,
            "seed": self.seed,
        }


@dataclass
class StreamPoint:
    """One maintenance arm's measurement over the full stream."""

    #: "window-incremental", "window-recompute", or "decay-incremental"
    #: (decay recompute is the functional equality oracle only — its
    #: per-tick cost is unbounded, so it is never a priced arm).
    arm: str
    ticks: int
    total_simulated_ms: float
    mean_tick_ms: float
    #: Bit-equality against the recompute oracle on every tick.
    identical: bool

    def to_dict(self) -> dict:
        return {
            "arm": self.arm,
            "ticks": self.ticks,
            "total_simulated_ms": self.total_simulated_ms,
            "mean_tick_ms": self.mean_tick_ms,
            "identical": self.identical,
        }


@dataclass
class StreamBenchReport:
    """Both semantics' arms plus the equality and speedup verdicts."""

    workload: StreamWorkload
    device: str
    points: list = field(default_factory=list)
    #: The cost model's predicted incremental speedup (context for the
    #: measured number; not gated).
    predicted_speedup: float = 0.0

    def point(self, arm: str) -> StreamPoint | None:
        for point in self.points:
            if point.arm == arm:
                return point
        return None

    @property
    def identical(self) -> bool:
        """Every arm bit-equal to its recompute oracle on every tick."""
        return bool(self.points) and all(
            point.identical for point in self.points
        )

    @property
    def measured_speedup(self) -> float:
        """Recompute-per-tick over incremental, simulated, window arm."""
        incremental = self.point("window-incremental")
        recompute = self.point("window-recompute")
        if incremental is None or recompute is None:
            return 0.0
        if incremental.total_simulated_ms <= 0:
            return float("inf")
        return recompute.total_simulated_ms / incremental.total_simulated_ms

    @property
    def fast_enough(self) -> bool:
        return self.measured_speedup >= GATE_SPEEDUP

    @property
    def passed(self) -> bool:
        return self.identical and self.fast_enough

    def to_dict(self) -> dict:
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "workload": self.workload.to_dict(),
            "device": self.device,
            "points": [point.to_dict() for point in self.points],
            "predicted_speedup": self.predicted_speedup,
            "measured_speedup": self.measured_speedup,
            "gates": {
                "speedup_at_least": GATE_SPEEDUP,
                "identical": True,
            },
            "identical": self.identical,
            "fast_enough": self.fast_enough,
            "passed": self.passed,
        }

    def render(self) -> str:
        w = self.workload
        lines = [
            f"device       : {self.device}",
            f"workload     : model window = {w.model_window} rows "
            f"({w.window_chunks} x {w.model_chunk_rows}), k = {w.k}, "
            f"ticks = {w.ticks}, decay = {w.decay}, shards = {w.shards}, "
            f"functional chunk = {w.chunk_rows}, seed = {w.seed}",
            "",
            f"{'arm':>20} {'ticks':>6} {'total ms':>10} {'ms/tick':>9} "
            f"{'exact':>6}",
        ]
        for point in self.points:
            lines.append(
                f"{point.arm:>20} {point.ticks:>6} "
                f"{point.total_simulated_ms:>10.4f} "
                f"{point.mean_tick_ms:>9.4f} "
                f"{'yes' if point.identical else 'NO':>6}"
            )
        lines.append("")
        lines.append(
            f"speedup      : {self.measured_speedup:6.2f}x measured "
            f"(model predicts {self.predicted_speedup:.2f}x), "
            f"gate >= {GATE_SPEEDUP:.1f}x"
        )
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(
            f"gate         : bit-equal on every tick and incremental "
            f">= {GATE_SPEEDUP:.1f}x faster -> {verdict}"
        )
        return "\n".join(lines)


def _equal(
    left: tuple[np.ndarray, np.ndarray], right: tuple[np.ndarray, np.ndarray]
) -> bool:
    return bool(
        np.array_equal(left[0], right[0], equal_nan=True)
        and np.array_equal(left[1], right[1])
    )


def _window_equal(
    workload: StreamWorkload,
    device: DeviceSpec,
    chunks: list[StreamChunk],
) -> bool:
    """Tick-for-tick bit-equality of the window arms at functional scale."""
    incremental = WindowTopK(
        workload.k, workload.window_chunks, workload.chunk_rows,
        device=device, shards=workload.shards, mode="incremental",
    )
    recompute = WindowTopK(
        workload.k, workload.window_chunks, workload.chunk_rows,
        device=device, shards=workload.shards, mode="recompute",
    )
    incremental.open()
    recompute.open()
    equal = True
    for chunk in chunks:
        incremental.advance(chunk)
        recompute.advance(chunk)
        if not _equal(incremental.emit(), recompute.emit()):
            equal = False
    incremental.close()
    recompute.close()
    return equal


def _decay_equal(
    workload: StreamWorkload,
    device: DeviceSpec,
    chunks: list[StreamChunk],
) -> bool:
    """Tick-for-tick bit-equality of the decay arms at functional scale."""
    decayed = DecayedTopK(
        workload.k, workload.decay, device=device,
        shards=workload.shards, mode="incremental",
    )
    oracle = DecayedTopK(
        workload.k, workload.decay, device=device,
        shards=workload.shards, mode="recompute",
    )
    decayed.open()
    oracle.open()
    equal = True
    for chunk in chunks:
        decayed.advance(chunk)
        oracle.advance(chunk)
        if not _equal(decayed.emit(), oracle.emit()):
            equal = False
    decayed.close()
    oracle.close()
    return equal


def run_streaming_benchmark(
    workload: StreamWorkload | None = None,
    device: DeviceSpec | None = None,
) -> StreamBenchReport:
    """Run every maintenance arm over the stream and assemble the report.

    Equality drives the real maintainers over the seeded functional
    chunks; costs are the steady-state tick traces priced at
    ``model_chunk_rows`` (a full window of live summaries), multiplied
    out over the stream's ticks.
    """
    workload = workload or StreamWorkload()
    device = device or get_device()
    chunks = workload.chunks()
    report = StreamBenchReport(workload=workload, device=device.name)
    report.predicted_speedup = StreamingModel(
        device, workload.model_chunk_rows
    ).speedup(workload.model_window, workload.model_chunk_rows, workload.k)

    # -- sliding window: incremental vs recompute ------------------------
    window_equal = _window_equal(workload, device, chunks)
    for arm_mode in ("incremental", "recompute"):
        pricing = WindowTopK(
            workload.k, workload.window_chunks, workload.model_chunk_rows,
            device=device, shards=workload.shards, mode=arm_mode,
        )
        tick_ms = trace_time(
            pricing.tick_trace(live=workload.window_chunks), device
        ).total_ms
        report.points.append(
            StreamPoint(
                arm=f"window-{arm_mode}",
                ticks=workload.ticks,
                total_simulated_ms=tick_ms * workload.ticks,
                mean_tick_ms=tick_ms,
                identical=window_equal,
            )
        )

    # -- decay: incremental vs the functional recompute oracle -----------
    decay_equal = _decay_equal(workload, device, chunks)
    pricing = DecayedTopK(
        workload.k, workload.decay, device=device, shards=workload.shards
    )
    tick_ms = trace_time(
        pricing.tick_trace(workload.model_chunk_rows), device
    ).total_ms
    report.points.append(
        StreamPoint(
            arm="decay-incremental",
            ticks=workload.ticks,
            total_simulated_ms=tick_ms * workload.ticks,
            mean_tick_ms=tick_ms,
            identical=decay_equal,
        )
    )
    return report


def check_baseline(report: StreamBenchReport, baseline: dict) -> list[str]:
    """Regression-gate a report against a committed baseline.

    Returns the list of violations (empty = pass).  Only deterministic
    quantities are gated — per-arm simulated milliseconds and the
    measured speedup (within the shared tolerance), tick equality, and
    the pass verdict — never wall clock.
    """
    if baseline.get("format") != REPORT_FORMAT:
        return [f"baseline is not a {REPORT_FORMAT} document"]
    if baseline.get("workload") != report.workload.to_dict():
        return [
            "baseline workload differs from the benchmarked stream: "
            f"{baseline.get('workload')} vs {report.workload.to_dict()}"
        ]
    problems = []
    for expected in baseline.get("points", []):
        arm = expected["arm"]
        point = report.point(arm)
        if point is None:
            problems.append(f"report is missing baseline arm {arm!r}")
            continue
        expected_ms = expected["total_simulated_ms"]
        if drifted(point.total_simulated_ms, expected_ms):
            problems.append(
                f"arm {arm!r} total_simulated_ms "
                f"{point.total_simulated_ms:.4f} deviates more than "
                f"{BASELINE_TOLERANCE:.0%} from baseline {expected_ms:.4f}"
            )
        if expected.get("identical", True) and not point.identical:
            problems.append(
                f"arm {arm!r} is no longer bit-equal to its recompute oracle"
            )
    expected_speedup = baseline.get("measured_speedup")
    if expected_speedup is not None and drifted(
        report.measured_speedup, expected_speedup
    ):
        problems.append(
            f"measured speedup {report.measured_speedup:.2f}x deviates more "
            f"than {BASELINE_TOLERANCE:.0%} from baseline "
            f"{expected_speedup:.2f}x"
        )
    if baseline.get("passed") and not report.passed:
        problems.append(
            "streaming gate regressed: baseline was bit-equal with the "
            f">= {GATE_SPEEDUP:.1f}x incremental speedup, this run is not"
        )
    return problems
