"""Continuous subscriptions: a standing top-k query over a stream.

A :class:`Subscription` is the continuous-query counterpart of one
``SELECT ... ORDER BY ... LIMIT k``: its plan is rooted on a
:class:`~repro.plan.Stream` node instead of a Scan, and instead of
executing once it is *ticked* — each tick absorbs one arriving chunk
into the window maintainer and emits the current top-k with the tick's
simulated execution trace.  Every tick runs under an observability span
(``stream:tick``) with the tick's kernels attributed exactly like a
one-shot query's, and publishes ``streaming.*`` metrics.

:func:`explain_stream` is EXPLAIN for subscriptions: it prices the two
maintenance strategies — ``incremental`` (per-chunk summaries merged per
tick) and ``recompute`` (the one-shot kernel over the window every tick)
— at steady state and recommends the cheaper, rendering through the same
:class:`~repro.engine.explain.QueryPlan` shape the one-shot EXPLAIN
uses, plan trees and fingerprints included.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro import observability as obs
from repro.bitonic.optimizations import FULL, OptimizationFlags
from repro.engine.explain import QueryPlan, StrategyPlan
from repro.errors import InvalidParameterError
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec, get_device
from repro.gpu.timing import trace_time
from repro.plan import PlanNode, Stream, TopK
from repro.streaming.window import (
    DecayedTopK,
    StreamChunk,
    WindowTopK,
)


@dataclass(frozen=True)
class TickResult:
    """One tick's answer: the current top-k plus its accounting."""

    tick: int
    #: Winner ranking values — raw stream values for window mode, the
    #: float64 decayed scores for decay mode.
    values: np.ndarray
    #: Winner global row ids (the tie-breaking identity).
    gids: np.ndarray
    trace: ExecutionTrace
    simulated_ms: float
    mode: str
    #: False when the serving layer absorbed the chunk but shed the emit.
    emitted: bool = True


class Subscription:
    """A standing top-k query driven tick-by-tick.

    Exactly one of ``window`` (sliding window, in rows, chunk aligned)
    or ``decay`` (per-tick exponential decay factor) selects the
    maintenance semantics.  ``tick(values, gids)`` drives the
    subscription manually; ``step()`` pulls the next chunk from the
    attached source (``Session.subscribe`` attaches the tweet stream).
    """

    def __init__(
        self,
        k: int,
        chunk_rows: int,
        window: int | None = None,
        decay: float | None = None,
        device: DeviceSpec | None = None,
        flags: OptimizationFlags = FULL,
        shards: int = 1,
        mode: str = "auto",
        source: str = "stream",
        source_chunks: Iterator[StreamChunk] | None = None,
        observed: Callable | None = None,
    ):
        if (window is None) == (decay is None):
            raise InvalidParameterError(
                "a subscription needs exactly one of window= or decay="
            )
        if chunk_rows < 1:
            raise InvalidParameterError(
                f"chunk_rows must be at least 1, got {chunk_rows}"
            )
        self.k = k
        self.chunk_rows = chunk_rows
        self.window = window
        self.decay = decay
        self.device = device or get_device()
        self.flags = flags
        self.shards = shards
        self.source = source
        self._source_chunks = source_chunks
        self._observed = observed or nullcontext
        if window is not None:
            if window < chunk_rows or window % chunk_rows != 0:
                raise InvalidParameterError(
                    f"window ({window}) must be a positive multiple of "
                    f"chunk_rows ({chunk_rows})"
                )
            self.maintainer = WindowTopK(
                k,
                window // chunk_rows,
                chunk_rows,
                device=self.device,
                flags=flags,
                shards=shards,
                mode=mode,
            )
        else:
            self.maintainer = DecayedTopK(
                k,
                decay,
                device=self.device,
                flags=flags,
                shards=shards,
                mode="incremental" if mode == "auto" else mode,
            )
        self.mode = self.maintainer.mode
        self.maintainer.open()
        self._next_gid = 0
        self.ticks = 0
        self.closed = False

    # -- identity ---------------------------------------------------------

    def plan(self) -> PlanNode:
        """The subscription's plan: TopK over a Stream source.

        Window/decay are identity fields of the Stream node, and the
        maintenance mode names the TopK algorithm — a sliding-window and
        a decayed subscription (or the two maintenance modes) fingerprint
        distinctly, so plan caches never conflate them.
        """
        stream = Stream(
            source=self.source,
            chunk_rows=self.chunk_rows,
            dtype="float32",
            window=self.window or 0,
            decay=self.decay,
        )
        kind = "window" if self.window is not None else "decay"
        return TopK(
            child=stream,
            k=self.k,
            n=self.window or 0,
            dtype="float32",
            algorithm=f"{self.mode}-{kind}",
        )

    def fingerprint(self) -> str:
        return self.plan().fingerprint()

    # -- driving ----------------------------------------------------------

    def tick(
        self,
        values: np.ndarray,
        gids: np.ndarray | None = None,
        emit: bool = True,
    ) -> TickResult:
        """Absorb one chunk and (unless shed) emit the current top-k."""
        if self.closed:
            raise InvalidParameterError("subscription is closed")
        values = np.asarray(values)
        if gids is None:
            gids = np.arange(
                self._next_gid, self._next_gid + len(values), dtype=np.int64
            )
        self._next_gid = int(gids[-1]) + 1 if len(gids) else self._next_gid
        chunk = StreamChunk(values=values, gids=np.asarray(gids))
        tick_index = self.ticks
        with self._observed():
            with obs.span(
                "stream:tick",
                category="streaming",
                tick=tick_index,
                mode=self.mode,
                rows=len(chunk),
                emitted=emit,
            ) as span:
                self.maintainer.advance(chunk)
                if emit:
                    out_values, out_gids = self.maintainer.emit()
                else:
                    out_values = np.empty(0, dtype=np.float64)
                    out_gids = np.empty(0, dtype=np.int64)
                trace = self._tick_trace()
                from repro.observability.instrument import record_trace

                sim_ms = record_trace(trace, self.device)
                if not sim_ms:
                    sim_ms = trace_time(trace, self.device).total_ms
                span.set(simulated_ms=sim_ms, result_rows=len(out_gids))
                registry = obs.active_metrics()
                if registry is not None:
                    registry.counter("streaming.ticks", mode=self.mode).inc()
                    registry.counter("streaming.rows").inc(len(chunk))
                    if not emit:
                        registry.counter("streaming.sheds").inc()
        self.ticks += 1
        return TickResult(
            tick=tick_index,
            values=out_values,
            gids=out_gids,
            trace=trace,
            simulated_ms=sim_ms,
            mode=self.mode,
            emitted=emit,
        )

    def step(self, emit: bool = True) -> TickResult:
        """Pull the next chunk from the attached source and tick."""
        if self._source_chunks is None:
            raise InvalidParameterError(
                "subscription has no attached source; drive it with tick()"
            )
        chunk = next(self._source_chunks)
        return self.tick(chunk.values, chunk.gids, emit=emit)

    def _tick_trace(self) -> ExecutionTrace:
        if isinstance(self.maintainer, WindowTopK):
            return self.maintainer.tick_trace()
        return self.maintainer.tick_trace(self.chunk_rows)

    def close(self) -> None:
        if not self.closed:
            self.maintainer.close()
            self.closed = True

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False


def explain_stream(
    k: int,
    chunk_rows: int,
    window: int | None = None,
    decay: float | None = None,
    device: DeviceSpec | None = None,
    flags: OptimizationFlags = FULL,
    shards: int = 1,
    source: str = "stream",
) -> QueryPlan:
    """EXPLAIN for a continuous subscription: price the maintenance modes.

    Window subscriptions price both arms at steady state (a full window
    of live summaries) and recommend the cheaper.  Decayed subscriptions
    have no finite window, so pure recompute has no bounded per-tick
    cost — only the incremental arm (whose carried candidate set is
    exact) is offered.
    """
    device = device or get_device()
    modes = ("incremental", "recompute") if window is not None else (
        "incremental",
    )
    strategies = []
    for mode in modes:
        subscription = Subscription(
            k,
            chunk_rows,
            window=window,
            decay=decay,
            device=device,
            flags=flags,
            shards=shards,
            mode=mode,
            source=source,
        )
        maintainer = subscription.maintainer
        if isinstance(maintainer, WindowTopK):
            trace = maintainer.tick_trace(live=maintainer.window_chunks)
            pipeline = (
                [
                    "chunk summarize (per-shard bitonic top-k)",
                    "tick merge (live summaries, canonical order)",
                ]
                if mode == "incremental"
                else ["window recompute (one-shot bitonic top-k per tick)"]
            )
        else:
            trace = maintainer.tick_trace(chunk_rows)
            pipeline = [
                "chunk summarize (per-shard bitonic top-k)",
                "decay + carried-set merge (float64 rescore)",
            ]
        plan = subscription.plan()
        subscription.close()
        strategies.append(
            StrategyPlan(
                strategy=mode,
                pipeline=tuple(pipeline),
                simulated_ms=trace_time(trace, device).total_ms,
                kernel_launches=trace.num_launches,
                plan=plan,
            )
        )
    strategies.sort(key=lambda plan: plan.simulated_ms)
    horizon = window if window is not None else chunk_rows
    clause = (
        f"OVER WINDOW {window}" if window is not None else f"DECAY {decay}"
    )
    sql = (
        f"SUBSCRIBE TOP {k} BY score FROM {source} "
        f"EVERY {chunk_rows} {clause}"
    )
    return QueryPlan(sql=sql, model_rows=horizon, strategies=tuple(strategies))
