"""Streaming top-k: incremental maintainers, subscriptions, serving.

The streaming layer turns the engine's one-shot selection into
continuous queries over unbounded streams: per-chunk summaries absorb
inserts and window evictions without recomputing from scratch
(:class:`WindowTopK`), exponential decay re-scores a carried candidate
set exactly (:class:`DecayedTopK`), and :class:`Subscription` packages
either behind the plan IR's ``Stream`` node.  Both maintainers are
bit-equal to full recomputation on every tick; the cost model's
:class:`~repro.costmodel.streaming_model.StreamingModel` prices the
churn crossover between the two modes.
"""

from repro.streaming.bench import (
    GATE_SPEEDUP,
    StreamBenchReport,
    StreamPoint,
    StreamWorkload,
    check_baseline,
    run_streaming_benchmark,
)
from repro.streaming.serve import (
    TICK_STATUSES,
    StreamServeReport,
    TickOutcome,
    serve_stream,
)
from repro.streaming.subscription import Subscription, TickResult, explain_stream
from repro.streaming.window import DecayedTopK, StreamChunk, WindowTopK

__all__ = [
    "GATE_SPEEDUP",
    "StreamBenchReport",
    "StreamPoint",
    "StreamWorkload",
    "check_baseline",
    "run_streaming_benchmark",
    "TICK_STATUSES",
    "StreamServeReport",
    "TickOutcome",
    "serve_stream",
    "Subscription",
    "TickResult",
    "explain_stream",
    "DecayedTopK",
    "StreamChunk",
    "WindowTopK",
]
