"""SLO-aware stream serving: per-tick deadlines on a sustained load.

A subscription served to a tenant inherits the tenant's
:class:`~repro.slo.qos.QoSClass` contract, applied *per tick*: every
tick must deliver its refreshed top-k within the class deadline
(simulated milliseconds), under the open-loop sustained load of one
chunk arriving per tick whether or not the previous tick is paid for.

The degradation ladder is the SLO layer's, re-based on ticks:

1. **degrade** — when the EWMA-projected tick time overruns the
   deadline and the class consents, the maintenance plan is switched to
   the cheap one in place
   (:meth:`~repro.streaming.window.WindowTopK.degrade_to_incremental` —
   exact, so answers stay bit-equal);
2. **shed** — still projected to overrun and the class is sheddable:
   the tick's chunk is absorbed (the window must stay current) but the
   emit is shed, recorded as a :class:`~repro.errors.
   DeadlineExceededError` outcome rather than a late answer;
3. **breaker** — consecutive deadline misses past the policy's breaker
   threshold trip the stream's circuit open and the serve loop stops
   rather than falling arbitrarily far behind.

Service-time projection uses the policy's EWMA estimator
(``ewma_alpha`` / ``initial_service_ms``), exactly like the request
scheduler's EDF estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import observability as obs
from repro.errors import DeadlineExceededError, InvalidParameterError
from repro.slo.qos import DEFAULT_POLICY, SloPolicy
from repro.streaming.subscription import Subscription
from repro.streaming.window import WindowTopK

#: Tick statuses a serve loop records, in ladder order.
TICK_STATUSES = ("ok", "degraded", "shed", "breaker-open")


@dataclass(frozen=True)
class TickOutcome:
    """One served tick's verdict under the deadline contract."""

    tick: int
    status: str
    simulated_ms: float
    deadline_ms: float
    projected_ms: float
    missed: bool
    #: The typed error a shed tick maps to (mirrors the request path's
    #: DeadlineExceededError contract); None for delivered ticks.
    error: str | None = None


@dataclass
class StreamServeReport:
    """The serve loop's full per-tick record plus summary statistics."""

    qos: str
    deadline_ms: float
    outcomes: list[TickOutcome] = field(default_factory=list)

    @property
    def ticks(self) -> int:
        return len(self.outcomes)

    @property
    def delivered(self) -> int:
        return sum(
            1 for outcome in self.outcomes
            if outcome.status in ("ok", "degraded")
        )

    @property
    def degraded_ticks(self) -> int:
        return sum(
            1 for outcome in self.outcomes if outcome.status == "degraded"
        )

    @property
    def shed_ticks(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == "shed")

    @property
    def breaker_tripped(self) -> bool:
        return any(
            outcome.status == "breaker-open" for outcome in self.outcomes
        )

    @property
    def deadline_hit_rate(self) -> float:
        if not self.outcomes:
            return 1.0
        hits = sum(1 for outcome in self.outcomes if not outcome.missed)
        return hits / len(self.outcomes)

    @property
    def p99_tick_ms(self) -> float:
        times = [
            outcome.simulated_ms
            for outcome in self.outcomes
            if outcome.status != "breaker-open"
        ]
        if not times:
            return 0.0
        return float(np.percentile(np.asarray(times), 99))

    def to_dict(self) -> dict:
        return {
            "qos": self.qos,
            "deadline_ms": self.deadline_ms,
            "ticks": self.ticks,
            "delivered": self.delivered,
            "degraded_ticks": self.degraded_ticks,
            "shed_ticks": self.shed_ticks,
            "breaker_tripped": self.breaker_tripped,
            "deadline_hit_rate": self.deadline_hit_rate,
            "p99_tick_ms": self.p99_tick_ms,
            "outcomes": [
                {
                    "tick": outcome.tick,
                    "status": outcome.status,
                    "simulated_ms": outcome.simulated_ms,
                    "deadline_ms": outcome.deadline_ms,
                    "projected_ms": outcome.projected_ms,
                    "missed": outcome.missed,
                    "error": outcome.error,
                }
                for outcome in self.outcomes
            ],
        }

    def render(self) -> str:
        lines = [
            f"stream serve: qos={self.qos} deadline={self.deadline_ms:.2f} ms",
            f"  ticks {self.ticks}  delivered {self.delivered}  "
            f"degraded {self.degraded_ticks}  shed {self.shed_ticks}",
            f"  deadline hit rate {self.deadline_hit_rate:6.1%}   "
            f"p99 tick {self.p99_tick_ms:.4f} ms   "
            f"breaker {'OPEN' if self.breaker_tripped else 'closed'}",
        ]
        return "\n".join(lines)


def serve_stream(
    subscription: Subscription,
    ticks: int,
    policy: SloPolicy = DEFAULT_POLICY,
    qos: str = "standard",
) -> StreamServeReport:
    """Drive ``ticks`` ticks of the subscription under per-tick deadlines.

    The subscription must have an attached source (``Session.subscribe``
    attaches one); each tick pulls the next chunk — sustained open-loop
    load — and walks the degradation ladder before paying for the emit.
    """
    if ticks < 1:
        raise InvalidParameterError(f"ticks must be at least 1, got {ticks}")
    qos_class = policy.class_named(qos)
    report = StreamServeReport(qos=qos, deadline_ms=qos_class.deadline_ms)
    projected = policy.initial_service_ms
    consecutive_misses = 0
    for tick in range(ticks):
        if consecutive_misses >= policy.breaker.failure_threshold:
            # Rung 3: the stream's breaker is open — stop serving rather
            # than deliver every remaining answer late.
            report.outcomes.append(
                TickOutcome(
                    tick=tick,
                    status="breaker-open",
                    simulated_ms=0.0,
                    deadline_ms=qos_class.deadline_ms,
                    projected_ms=projected,
                    missed=True,
                    error=DeadlineExceededError.__name__,
                )
            )
            break
        status = "ok"
        if projected > qos_class.deadline_ms and qos_class.degradable:
            maintainer = subscription.maintainer
            if isinstance(maintainer, WindowTopK):
                if maintainer.degrade_to_incremental():
                    subscription.mode = maintainer.mode
                    status = "degraded"
                    # The cheap plan invalidates the expensive plan's
                    # history; re-project from one cheap tick.
                    projected = policy.initial_service_ms
        shed = (
            projected > qos_class.deadline_ms
            and status != "degraded"
            and qos_class.sheddable
        )
        result = subscription.step(emit=not shed)
        observed = result.simulated_ms
        missed = shed or observed > qos_class.deadline_ms
        if shed:
            status = "shed"
        report.outcomes.append(
            TickOutcome(
                tick=tick,
                status=status,
                simulated_ms=observed,
                deadline_ms=qos_class.deadline_ms,
                projected_ms=projected,
                missed=missed,
                error=DeadlineExceededError.__name__ if shed else None,
            )
        )
        consecutive_misses = consecutive_misses + 1 if missed else 0
        projected = (
            policy.ewma_alpha * observed
            + (1.0 - policy.ewma_alpha) * projected
        )
        registry = obs.active_metrics()
        if registry is not None:
            registry.counter("streaming.served_ticks", status=status).inc()
    return report
