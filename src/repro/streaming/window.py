"""Incremental top-k maintenance over sliding windows and decayed streams.

The maintainers here implement the engine's incremental operator contract
(:class:`~repro.engine.operators.IncrementalOperator`) with ``advance``
as *summary absorption* instead of buffering:

* :class:`WindowTopK` keeps a ring of per-chunk **bucketed summaries** —
  each arriving chunk is reduced to its own top-k candidates, the window
  evicts whole expired chunks by dropping their summaries, and ``emit``
  merges the live summaries.  The summary ring is exact: any true window
  top-k row has fewer than k predecessors in the whole window, hence
  fewer than k in its own chunk, so it survives its chunk's summary —
  the delegate argument of Dr. Top-k applied per chunk.  Merging uses
  the canonical total order (:func:`repro.sharding.merge.merge_topk`:
  values descending, NaN last, ties to the lower global row id), so the
  incremental answer is **bit-equal** to recomputing over the window's
  raw rows every tick.
* :class:`DecayedTopK` maintains exponentially-decayed top-k: every live
  row's score at tick ``T`` is ``value * decay**(T - arrival_tick)``.
  Uniform decay preserves every pairwise score *ratio* across ticks, so
  the previous winners plus the new chunk's summary form an exact
  candidate set — no eviction ever needs revisiting dropped rows.  Both
  the incremental and recompute arms compute scores with the identical
  float64 expression, so ties (including cross-tick score collisions)
  resolve identically and the answers are bit-equal.

When the executor holds multiple shards, each arriving chunk is split
into contiguous per-shard ranges, every shard summarizes its range
concurrently, and the per-shard summaries are merged per tick — the
tick trace charges the critical path (one shard's kernels), mirroring
the scatter-gather executor's accounting.

Each maintainer prices its own crossover: construction consults the
:class:`~repro.costmodel.streaming_model.StreamingModel` and falls back
to recompute-per-tick when churn (chunk/window) is past the point where
summary maintenance stops paying (``mode="auto"``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.bitonic.kernels import build_trace
from repro.bitonic.optimizations import FULL, OptimizationFlags
from repro.costmodel.streaming_model import CANDIDATE_BYTES, StreamingModel
from repro.engine.operators import IncrementalOperator
from repro.errors import InvalidParameterError
from repro.gpu import faults
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec, get_device
from repro.plan import network_k
from repro.sharding.merge import merge_topk

#: Maintenance modes a maintainer resolves ``"auto"`` to.
MODES = ("incremental", "recompute")


@dataclass(frozen=True)
class StreamChunk:
    """One tick's arriving rows: ranking values + global row ids."""

    values: np.ndarray
    gids: np.ndarray

    def __post_init__(self) -> None:
        if len(self.values) != len(self.gids):
            raise InvalidParameterError(
                f"chunk values ({len(self.values)}) and gids "
                f"({len(self.gids)}) must align"
            )

    def __len__(self) -> int:
        return len(self.values)


def _validate_mode(mode: str) -> None:
    if mode not in MODES and mode != "auto":
        raise InvalidParameterError(
            f"unknown maintenance mode {mode!r}; "
            f"available: {('auto', *MODES)}"
        )


def _chunk_summary(
    chunk: StreamChunk, k: int, shards: int
) -> tuple[np.ndarray, np.ndarray]:
    """The chunk's top-k candidates, via per-shard summaries when sharded.

    Sub-summaries contain the chunk's true top-k (the same predecessor
    argument one level down), so the sharded merge equals the direct
    summary bit for bit.
    """
    if shards <= 1 or len(chunk) <= shards:
        return merge_topk(chunk.values, chunk.gids, k)
    bounds = np.linspace(0, len(chunk), shards + 1, dtype=np.int64)
    partial_values = []
    partial_gids = []
    for shard in range(shards):
        lo, hi = bounds[shard], bounds[shard + 1]
        values, gids = merge_topk(
            chunk.values[lo:hi], chunk.gids[lo:hi], k
        )
        partial_values.append(values)
        partial_gids.append(gids)
    return merge_topk(
        np.concatenate(partial_values), np.concatenate(partial_gids), k
    )


class WindowTopK(IncrementalOperator):
    """Sliding-window top-k via a ring of per-chunk summaries.

    The window is ``window_chunks`` chunks long (windows are chunk
    aligned: evictions drop whole expired chunks).  ``advance`` absorbs
    one chunk — summarize, append, let the ring evict — and ``emit``
    merges the live summaries.  Under ``mode="recompute"`` the raw
    chunks are retained instead and every ``emit`` re-selects over the
    full window; ``mode="auto"`` picks whichever the cost model prices
    cheaper at this (window, chunk, k).
    """

    def __init__(
        self,
        k: int,
        window_chunks: int,
        chunk_rows: int,
        device: DeviceSpec | None = None,
        flags: OptimizationFlags = FULL,
        shards: int = 1,
        mode: str = "auto",
    ):
        super().__init__()
        if k < 1:
            raise InvalidParameterError(f"k must be at least 1, got {k}")
        if window_chunks < 1:
            raise InvalidParameterError(
                f"window_chunks must be at least 1, got {window_chunks}"
            )
        if chunk_rows < 1:
            raise InvalidParameterError(
                f"chunk_rows must be at least 1, got {chunk_rows}"
            )
        if shards < 1:
            raise InvalidParameterError(
                f"shards must be at least 1, got {shards}"
            )
        _validate_mode(mode)
        self.k = k
        self.window_chunks = window_chunks
        self.chunk_rows = chunk_rows
        self.device = device or get_device()
        self.flags = flags
        self.shards = shards
        if mode == "auto":
            model = StreamingModel(self.device, chunk_rows, flags)
            mode = model.choose_mode(window_chunks * chunk_rows, chunk_rows, k)
        self.mode = mode
        self._summaries: deque = deque(maxlen=window_chunks)
        self._raw: deque = deque(maxlen=window_chunks)
        self.ticks = 0

    # -- the incremental contract ---------------------------------------

    def open(self) -> None:
        super().open()
        self._summaries.clear()
        self._raw.clear()
        self.ticks = 0

    def advance(self, chunk: StreamChunk) -> None:
        self._require_open("advance")
        if self.mode == "incremental":
            self._summaries.append(_chunk_summary(chunk, self.k, self.shards))
        else:
            self._raw.append(chunk)
        self.ticks += 1

    def emit(self, k: int | None = None, model_n: int | None = None):
        self._require_open("emit")
        k = self.k if k is None else k
        if self.ticks == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty.astype(np.float64), empty
        if self.mode == "incremental":
            pool = self._summaries
            values = np.concatenate([summary[0] for summary in pool])
            gids = np.concatenate([summary[1] for summary in pool])
        else:
            values = np.concatenate([chunk.values for chunk in self._raw])
            gids = np.concatenate([chunk.gids for chunk in self._raw])
        return merge_topk(values, gids, k)

    def close(self) -> None:
        super().close()
        self._summaries.clear()
        self._raw.clear()

    def degrade_to_incremental(self) -> bool:
        """Switch a recompute-mode window to summary maintenance in place.

        The SLO ladder's rung 1 for streams: when projected tick time
        overruns the deadline, the cheap plan replaces the expensive one
        without losing the window — each retained raw chunk is summarized
        into the ring, which is exact, so the next ``emit`` is still
        bit-equal.  Returns False when already incremental.
        """
        if self.mode == "incremental":
            return False
        for chunk in self._raw:
            self._summaries.append(_chunk_summary(chunk, self.k, self.shards))
        self._raw.clear()
        self.mode = "incremental"
        return True

    # -- accounting ------------------------------------------------------

    def live_rows(self) -> int:
        """Rows the live window covers (for recompute accounting)."""
        live = min(self.ticks, self.window_chunks)
        return live * self.chunk_rows

    def tick_trace(self, live: int | None = None) -> ExecutionTrace:
        """The simulated kernels one tick of maintenance launches.

        Incremental: the per-shard chunk summarize (critical path — the
        shards run concurrently, so one shard's kernels are charged) plus
        the tick merge over the live candidates.  Recompute: the one-shot
        selection over the whole live window.  ``live`` overrides the
        live-chunk count (EXPLAIN prices the steady state, a maintainer
        mid-warmup reports what it actually holds).
        """
        padded_k = network_k(self.k)
        if live is None:
            live = max(1, min(self.ticks, self.window_chunks))
        with faults.suspended():
            trace = ExecutionTrace()
            if self.mode == "incremental":
                shard_rows = max(1, self.chunk_rows // self.shards)
                trace.extend(
                    build_trace(
                        shard_rows, padded_k, CANDIDATE_BYTES,
                        self.flags, self.device,
                    )
                )
                candidates = (live + self.shards) * self.k
                merge = trace.launch("tick-merge")
                merge.add_global_read(float(candidates) * CANDIDATE_BYTES)
                merge.add_global_write(float(self.k) * CANDIDATE_BYTES)
            else:
                trace.extend(
                    build_trace(
                        max(1, live * self.chunk_rows), padded_k,
                        CANDIDATE_BYTES, self.flags, self.device,
                    )
                )
            trace.notes["streaming.mode"] = self.mode
            trace.notes["streaming.shards"] = self.shards
        return trace


class DecayedTopK(IncrementalOperator):
    """Exponentially-decayed top-k over an unbounded stream.

    Every live row's score at tick ``T`` is the float64 product
    ``value * decay**(T - arrival_tick)``.  The incremental arm carries
    only the previous winners (with their base values and arrival ticks)
    and absorbs each new chunk's summary; the recompute arm retains every
    chunk and re-scores the full history.  Both arms evaluate scores
    with the identical expression, so they are bit-equal per tick.
    """

    def __init__(
        self,
        k: int,
        decay: float,
        device: DeviceSpec | None = None,
        flags: OptimizationFlags = FULL,
        shards: int = 1,
        mode: str = "incremental",
    ):
        super().__init__()
        if k < 1:
            raise InvalidParameterError(f"k must be at least 1, got {k}")
        if not 0.0 < decay <= 1.0:
            raise InvalidParameterError(
                f"decay must be in (0, 1], got {decay}"
            )
        if shards < 1:
            raise InvalidParameterError(
                f"shards must be at least 1, got {shards}"
            )
        _validate_mode(mode)
        if mode == "auto":
            # Decay has no window to recompute over a bounded set; the
            # incremental candidate set is exact, so it is always chosen.
            mode = "incremental"
        self.k = k
        self.decay = decay
        self.device = device or get_device()
        self.flags = flags
        self.shards = shards
        self.mode = mode
        self.ticks = 0
        self._values = np.empty(0, dtype=np.float64)
        self._arrivals = np.empty(0, dtype=np.int64)
        self._gids = np.empty(0, dtype=np.int64)
        self._history: list[tuple[np.ndarray, np.ndarray, int]] = []

    def open(self) -> None:
        super().open()
        self.ticks = 0
        self._values = np.empty(0, dtype=np.float64)
        self._arrivals = np.empty(0, dtype=np.int64)
        self._gids = np.empty(0, dtype=np.int64)
        self._history = []

    def advance(self, chunk: StreamChunk) -> None:
        self._require_open("advance")
        tick = self.ticks
        if self.mode == "incremental":
            # Within one chunk every row shares an arrival tick, so the
            # raw-value order *is* the score order: the chunk summary is
            # an exact candidate subset.
            values, gids = _chunk_summary(chunk, self.k, self.shards)
            self._values = np.concatenate(
                [self._values, values.astype(np.float64)]
            )
            self._arrivals = np.concatenate(
                [self._arrivals, np.full(len(gids), tick, dtype=np.int64)]
            )
            self._gids = np.concatenate(
                [self._gids, gids.astype(np.int64)]
            )
        else:
            self._history.append(
                (
                    np.asarray(chunk.values, dtype=np.float64),
                    np.asarray(chunk.gids, dtype=np.int64),
                    tick,
                )
            )
        self.ticks += 1

    @staticmethod
    def _scores(
        values: np.ndarray, arrivals: np.ndarray, tick: int, decay: float
    ) -> np.ndarray:
        # The single scoring expression both arms share: any change here
        # must stay literally identical across them, or bit-equality (and
        # the tie structure) silently breaks.
        return values * np.float64(decay) ** (tick - arrivals)

    def emit(self, k: int | None = None, model_n: int | None = None):
        self._require_open("emit")
        k = self.k if k is None else k
        if self.ticks == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty.astype(np.float64), empty
        tick = self.ticks - 1
        if self.mode == "incremental":
            values, arrivals, gids = self._values, self._arrivals, self._gids
        else:
            values = np.concatenate([item[0] for item in self._history])
            arrivals = np.concatenate(
                [
                    np.full(len(item[1]), item[2], dtype=np.int64)
                    for item in self._history
                ]
            )
            gids = np.concatenate([item[1] for item in self._history])
        scores = self._scores(values, arrivals, tick, self.decay)
        order = np.lexsort((gids, -scores))[:k]
        if self.mode == "incremental":
            # The winners (base values + arrivals) are the next tick's
            # carried candidates — the ratio argument makes them exact.
            self._values = values[order]
            self._arrivals = arrivals[order]
            self._gids = gids[order]
        return scores[order], gids[order]

    def close(self) -> None:
        super().close()
        self._values = np.empty(0, dtype=np.float64)
        self._arrivals = np.empty(0, dtype=np.int64)
        self._gids = np.empty(0, dtype=np.int64)
        self._history = []

    def tick_trace(self, chunk_rows: int) -> ExecutionTrace:
        """One tick's simulated kernels (summarize + carried-set merge)."""
        padded_k = network_k(self.k)
        with faults.suspended():
            trace = ExecutionTrace()
            shard_rows = max(1, chunk_rows // self.shards)
            trace.extend(
                build_trace(
                    shard_rows, padded_k, CANDIDATE_BYTES,
                    self.flags, self.device,
                )
            )
            merge = trace.launch("tick-merge")
            candidates = (1 + self.shards) * self.k
            merge.add_global_read(float(candidates) * CANDIDATE_BYTES)
            merge.add_global_write(float(self.k) * CANDIDATE_BYTES)
            trace.notes["streaming.mode"] = self.mode
            trace.notes["streaming.shards"] = self.shards
        return trace
