"""Experiment functions regenerating every figure of the evaluation.

Each ``figure_*`` function runs the relevant algorithms *functionally* at a
reduced input size (``functional_n``, default 2^18) while the execution
traces model the paper's full scale (2^29 keys / 250M tweets), and returns
a :class:`~repro.bench.report.Figure` whose series are simulated
milliseconds on the Titan X Maxwell profile.  ``REGISTRY`` maps figure ids
to functions; the pytest-benchmark files under ``benchmarks/`` are thin
wrappers around these.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.algorithms.base import TopKAlgorithm
from repro.algorithms.bucket_select import BucketSelectTopK
from repro.algorithms.per_thread import PerThreadTopK
from repro.algorithms.per_thread_registers import PerThreadRegisterTopK
from repro.algorithms.radix_select import RadixSelectTopK
from repro.algorithms.radix_sort import SortTopK
from repro.bench.report import Figure
from repro.bitonic.kernels import build_trace
from repro.bitonic.optimizations import ABLATION_LADDER, FULL, PAPER_LADDER_MS
from repro.bitonic.topk import BitonicTopK
from repro.costmodel.bitonic_model import BitonicModel
from repro.costmodel.radix_model import RadixSelectModel
from repro.cpu.bitonic_cpu import CpuBitonicTopK
from repro.cpu.pq_topk import HandPqTopK, StlPqTopK
from repro.data.distributions import (
    bucket_killer,
    increasing,
    decreasing,
    uniform_doubles,
    uniform_floats,
    uniform_uints,
)
from repro.data.records import make_batch
from repro.engine.session import Session
from repro.engine.twitter import generate_tweets, time_threshold_for_selectivity
from repro.gpu.device import DeviceSpec, get_device
from repro.gpu.timing import memory_bandwidth_bound, trace_time

#: Default functional input size for the sweeps (the traces model 2^29).
DEFAULT_FUNCTIONAL_N = 1 << 18

#: The paper's primary evaluation scale.
PAPER_N = 1 << 29

#: k values of the Figure 11/12 sweeps.
K_SWEEP = tuple(1 << i for i in range(0, 11))


def _gpu_algorithms(device: DeviceSpec) -> list[TopKAlgorithm]:
    return [
        SortTopK(device),
        PerThreadTopK(device),
        RadixSelectTopK(device),
        BucketSelectTopK(device),
        BitonicTopK(device),
    ]


def _k_sweep_figure(
    figure: Figure,
    data: np.ndarray,
    device: DeviceSpec,
    model_n: int,
    ks: tuple[int, ...] = K_SWEEP,
) -> Figure:
    bandwidth = figure.add_series("memory-bandwidth")
    algorithms = _gpu_algorithms(device)
    series = {alg.name: figure.add_series(alg.name) for alg in algorithms}
    for k in ks:
        if k > len(data):
            continue
        bandwidth.add(k, memory_bandwidth_bound(model_n * data.dtype.itemsize, device) * 1e3)
        for algorithm in algorithms:
            if not algorithm.supports(model_n, k, data.dtype):
                continue
            result = algorithm.run(data, k, model_n=model_n)
            series[algorithm.name].add(k, result.simulated_ms(device))
    return figure


def figure_11a(
    functional_n: int = DEFAULT_FUNCTIONAL_N,
    device: DeviceSpec | None = None,
    seed: int = 0,
) -> Figure:
    """Figure 11a: runtime vs k, 2^29 uniform floats."""
    device = device or get_device()
    figure = Figure(
        "fig11a",
        "Performance with varying K (uniform floats, n = 2^29)",
        "k",
        "simulated ms",
        paper_expectation=(
            "Bitonic wins for k <= 256; radix select wins beyond; sort flat "
            "~100 ms; per-thread rises steeply from k = 32 and fails past 256."
        ),
    )
    return _k_sweep_figure(figure, uniform_floats(functional_n, seed), device, PAPER_N)


def figure_11b(
    functional_n: int = DEFAULT_FUNCTIONAL_N,
    device: DeviceSpec | None = None,
    seed: int = 0,
) -> Figure:
    """Figure 11b: runtime vs k, 2^29 uniform uint32."""
    device = device or get_device()
    figure = Figure(
        "fig11b",
        "Performance with varying K (uniform uints, n = 2^29)",
        "k",
        "simulated ms",
        paper_expectation=(
            "Same as 11a except radix select improves: uniform uints give "
            "the maximal 256x reduction per pass."
        ),
    )
    return _k_sweep_figure(figure, uniform_uints(functional_n, seed), device, PAPER_N)


def figure_11c(
    functional_n: int = DEFAULT_FUNCTIONAL_N,
    device: DeviceSpec | None = None,
    seed: int = 0,
) -> Figure:
    """Figure 11c: runtime vs k, 2^28 uniform doubles (same bytes as 11a)."""
    device = device or get_device()
    figure = Figure(
        "fig11c",
        "Performance with varying K (uniform doubles, n = 2^28)",
        "k",
        "simulated ms",
        paper_expectation=(
            "Sort doubles its passes; per-thread fails past k = 128; bitonic "
            "largely unchanged (same total bytes)."
        ),
    )
    return _k_sweep_figure(
        figure, uniform_doubles(functional_n, seed), device, PAPER_N // 2
    )


def figure_12a(
    functional_n: int = DEFAULT_FUNCTIONAL_N,
    device: DeviceSpec | None = None,
    seed: int = 0,
) -> Figure:
    """Figure 12a: sorted-increasing floats."""
    device = device or get_device()
    figure = Figure(
        "fig12a",
        "Increasing distribution (sorted floats, n = 2^29)",
        "k",
        "simulated ms",
        paper_expectation=(
            "Per-thread degrades up to 3x (every element inserts); sort and "
            "bitonic are unchanged."
        ),
    )
    return _k_sweep_figure(figure, increasing(functional_n, seed), device, PAPER_N)


def figure_12b(
    functional_n: int = DEFAULT_FUNCTIONAL_N,
    device: DeviceSpec | None = None,
    seed: int = 0,
) -> Figure:
    """Figure 12b: the bucket-killer adversarial distribution."""
    device = device or get_device()
    figure = Figure(
        "fig12b",
        "Bucket-killer distribution (n = 2^29)",
        "k",
        "simulated ms",
        paper_expectation=(
            "Radix select degrades to sort's cost (one element eliminated "
            "per pass); bucket select slows ~2x; bitonic unchanged."
        ),
    )
    return _k_sweep_figure(figure, bucket_killer(functional_n, seed), device, PAPER_N)


def figure_13(
    device: DeviceSpec | None = None,
    seed: int = 0,
    size_exponents: tuple[int, ...] = tuple(range(21, 30)),
) -> Figure:
    """Figure 13: runtime vs data size at k = 64."""
    device = device or get_device()
    figure = Figure(
        "fig13",
        "Performance with varying data size (uniform floats, k = 64)",
        "n",
        "simulated ms",
        paper_expectation=(
            "Bitonic and sort grow linearly; selection methods flatten below "
            "2^24 where the constant prefix-sum cost dominates; per-thread "
            "shows an outward bulge at small n."
        ),
    )
    algorithms = _gpu_algorithms(device)
    series = {alg.name: figure.add_series(alg.name) for alg in algorithms}
    for exponent in size_exponents:
        model_n = 1 << exponent
        functional_n = min(model_n, max(1 << 14, model_n >> 9))
        data = uniform_floats(functional_n, seed)
        for algorithm in algorithms:
            result = algorithm.run(data, 64, model_n=model_n)
            series[algorithm.name].add(f"2^{exponent}", result.simulated_ms(device))
    return figure


def figure_14(
    functional_n: int = DEFAULT_FUNCTIONAL_N,
    device: DeviceSpec | None = None,
    seed: int = 0,
) -> Figure:
    """Figure 14: key+value configurations (KV, KKV, KKKV) at n = 2^28."""
    device = device or get_device()
    model_n = PAPER_N // 2
    figure = Figure(
        "fig14",
        "Key(s)+value tuples (n = 2^28)",
        "k",
        "simulated ms",
        paper_expectation=(
            "Runtimes rise linearly from KV to KKKV with the row width; the "
            "bitonic/radix-select cutoff stays at the same k."
        ),
    )
    for num_keys, label in ((1, "KV"), (2, "KKV"), (3, "KKKV")):
        batch = make_batch(functional_n, num_keys=num_keys, seed=seed)
        rank = batch.composite_rank().astype(np.float32)
        bitonic_series = figure.add_series(f"bitonic-{label}")
        radix_series = figure.add_series(f"radix-select-{label}")
        for k in (16, 32, 64, 128, 256, 512):
            width = batch.row_bytes
            bitonic = BitonicTopK(device)
            result = bitonic.run(rank, k, model_n=model_n)
            # Rescale the trace to the full row width: every kernel moves
            # whole rows, not just the primary key.
            scaled = result.trace.scaled(width / rank.dtype.itemsize)
            bitonic_series.add(k, trace_time(scaled, device).total_ms)
            radix = RadixSelectTopK(device)
            radix_result = radix.run(rank, k, model_n=model_n)
            scaled = radix_result.trace.scaled(width / rank.dtype.itemsize)
            radix_series.add(k, trace_time(scaled, device).total_ms)
    return figure


def figure_15(
    sorted_input: bool,
    functional_n: int = DEFAULT_FUNCTIONAL_N,
    device: DeviceSpec | None = None,
    seed: int = 0,
) -> Figure:
    """Figure 15a (uniform) / 15b (sorted): CPU baselines vs GPU methods."""
    device = device or get_device()
    suffix = "b" if sorted_input else "a"
    name = "sorted ascending" if sorted_input else "uniform"
    figure = Figure(
        f"fig15{suffix}",
        f"CPU vs GPU top-k ({name} floats, n = 2^29)",
        "k",
        "simulated ms",
        paper_expectation=(
            "Uniform: Hand PQ ~3x slower than GPU bitonic at k = 32; CPU "
            "bitonic far worse.  Sorted: GPU bitonic 60x faster than Hand PQ "
            "and 120x faster than STL PQ; CPU bitonic tracks Hand PQ."
            if not sorted_input
            else "Sorted: every element triggers a heap update; GPU bitonic "
            "is 60x (Hand PQ) / 120x (STL PQ) faster; CPU bitonic is close "
            "to Hand PQ despite more comparisons (SIMD)."
        ),
    )
    data = increasing(functional_n, seed) if sorted_input else uniform_floats(
        functional_n, seed
    )
    algorithms = [
        StlPqTopK(device),
        HandPqTopK(device),
        CpuBitonicTopK(device),
        BitonicTopK(device),
        RadixSelectTopK(device),
    ]
    series = {alg.name: figure.add_series(alg.name) for alg in algorithms}
    for k in (8, 16, 32, 64, 128, 256):
        for algorithm in algorithms:
            result = algorithm.run(data, k, model_n=PAPER_N)
            series[algorithm.name].add(k, result.simulated_ms(device))
    return figure


def figure_16a(
    functional_rows: int = 1 << 18,
    device: DeviceSpec | None = None,
    seed: int = 0,
    model_rows: int = 250_000_000,
) -> Figure:
    """Figure 16a: query 1 (time filter + top-50) across selectivities."""
    device = device or get_device()
    figure = Figure(
        "fig16a",
        "MapD query 1: filter selectivity sweep (250M tweets, LIMIT 50)",
        "selectivity",
        "simulated ms",
        paper_expectation=(
            "Filter+Sort worst and growing with selectivity; bitonic top-k "
            "methods win; fusing filter into the SortReducer saves ~30% of "
            "kernel time at selectivity 1."
        ),
    )
    session = Session(device)
    session.register(generate_tweets(functional_rows, seed))
    names = {"sort": "Filter+Sort", "topk": "Filter+BitonicTopK", "fused": "Combined"}
    series = {strategy: figure.add_series(label) for strategy, label in names.items()}
    for tenths in range(0, 11):
        selectivity = tenths / 10.0
        threshold = time_threshold_for_selectivity(selectivity)
        sql = (
            f"SELECT id FROM tweets WHERE tweet_time < {threshold} "
            "ORDER BY retweet_count DESC LIMIT 50"
        )
        for strategy in names:
            result = session.sql(sql, strategy=strategy, model_rows=model_rows)
            series[strategy].add(selectivity, result.simulated_ms())
    return figure


def figure_16b(
    functional_rows: int = 1 << 18,
    device: DeviceSpec | None = None,
    seed: int = 0,
    model_rows: int = 250_000_000,
) -> Figure:
    """Figure 16b: query 2 (custom ranking function) across K."""
    device = device or get_device()
    figure = Figure(
        "fig16b",
        "MapD query 2: custom ranking function (250M tweets)",
        "k",
        "simulated ms",
        paper_expectation=(
            "Project+Sort worst; computing the ranking function inside the "
            "SortReducer (Combined) beats Project+BitonicTopK by the cost of "
            "writing and re-reading the projected rank column (~10 ms)."
        ),
    )
    session = Session(device)
    session.register(generate_tweets(functional_rows, seed))
    names = {"sort": "Project+Sort", "topk": "Project+BitonicTopK", "fused": "Combined"}
    series = {strategy: figure.add_series(label) for strategy, label in names.items()}
    for k in (16, 32, 64, 128, 256):
        sql = (
            "SELECT id FROM tweets "
            f"ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT {k}"
        )
        for strategy in names:
            result = session.sql(sql, strategy=strategy, model_rows=model_rows)
            series[strategy].add(k, result.simulated_ms())
    return figure


def query_3(
    functional_rows: int = 1 << 18,
    device: DeviceSpec | None = None,
    seed: int = 0,
    model_rows: int = 250_000_000,
) -> Figure:
    """Section 6.8 query 3: language filter (selectivity ~0.8) across K."""
    device = device or get_device()
    figure = Figure(
        "q3",
        "MapD query 3: lang = en OR es filter (selectivity ~0.8)",
        "k",
        "simulated ms",
        paper_expectation=(
            "Same trend as query 1 at a fixed ~80% selectivity; the combined "
            "kernel saves the filtered (id, retweet_count) round trip "
            "(~16 ms) across all K."
        ),
    )
    session = Session(device)
    session.register(generate_tweets(functional_rows, seed))
    names = {"sort": "Filter+Sort", "topk": "Filter+BitonicTopK", "fused": "Combined"}
    series = {strategy: figure.add_series(label) for strategy, label in names.items()}
    for k in (16, 32, 64, 128, 256):
        sql = (
            "SELECT id FROM tweets WHERE lang = 'en' OR lang = 'es' "
            f"ORDER BY retweet_count DESC LIMIT {k}"
        )
        for strategy in names:
            result = session.sql(sql, strategy=strategy, model_rows=model_rows)
            series[strategy].add(k, result.simulated_ms())
    return figure


def query_4(
    functional_rows: int = 1 << 18,
    device: DeviceSpec | None = None,
    seed: int = 0,
    model_rows: int = 250_000_000,
) -> Figure:
    """Section 6.8 query 4: top-50 users by tweet count (GROUP BY)."""
    device = device or get_device()
    figure = Figure(
        "q4",
        "MapD query 4: GROUP BY uid, top-50 by count (57M users scaled)",
        "strategy",
        "simulated ms",
        paper_expectation=(
            "The group-by dominates; replacing the sort step with bitonic "
            "top-k removes most of the sort's 44 ms share (39% of the 97 ms "
            "total in MapD)."
        ),
    )
    session = Session(device)
    session.register(generate_tweets(functional_rows, seed))
    sql = (
        "SELECT uid, COUNT() AS num_tweets FROM tweets "
        "GROUP BY uid ORDER BY num_tweets DESC LIMIT 50"
    )
    series = figure.add_series("simulated-ms")
    breakdown = figure.add_series("topk-step-share")
    for strategy, label in (("sort", "GroupBy+Sort"), ("topk", "GroupBy+BitonicTopK")):
        result = session.sql(sql, strategy=strategy, model_rows=model_rows)
        total = result.simulated_ms()
        series.add(label, total)
        by_kernel = result.simulated_time().by_kernel()
        topk_ms = sum(
            ms
            for name, ms in by_kernel.items()
            if "sort" in name.lower() or "Reducer" in name
        )
        breakdown.add(label, topk_ms * 1e3)
    return figure


def figure_08(
    device: DeviceSpec | None = None,
) -> Figure:
    """Figure 8: elements-per-thread (B) sweep for top-32."""
    device = device or get_device()
    figure = Figure(
        "fig08",
        "Varying elements per thread (top-32, 2^29 floats)",
        "B",
        "simulated ms",
        paper_expectation=(
            "Throughput improves up to B = 16, is flat to B = 32, and "
            "degrades at B = 64 where register/shared pressure cuts occupancy."
        ),
    )
    series = figure.add_series("bitonic")
    for elements in (2, 4, 8, 16, 32, 64):
        flags = FULL.with_elements_per_thread(elements)
        trace = build_trace(PAPER_N, 32, 4, flags, device)
        series.add(elements, trace_time(trace, device).total_ms)
    return figure


def ablation_43(
    device: DeviceSpec | None = None,
) -> Figure:
    """The Section 4.3 optimization ladder for top-32 over 2^29 floats."""
    device = device or get_device()
    figure = Figure(
        "abl43",
        "Optimization ablation ladder (top-32, 2^29 floats)",
        "configuration",
        "simulated ms",
        paper_expectation=(
            "521 -> 122 -> 48.15 -> 33.7 -> 22.3 -> 17.8 -> 16 -> 15.4 ms"
        ),
    )
    model = figure.add_series("model")
    paper = figure.add_series("paper")
    for (name, flags), paper_ms in zip(ABLATION_LADDER, PAPER_LADDER_MS):
        trace = build_trace(PAPER_N, 32, 4, flags, device)
        model.add(name, trace_time(trace, device).total_ms)
        paper.add(name, paper_ms)
    return figure


def figure_17(
    functional_n: int = DEFAULT_FUNCTIONAL_N,
    device: DeviceSpec | None = None,
    seed: int = 0,
) -> Figure:
    """Figure 17: cost-model predictions vs measured (simulated) times."""
    device = device or get_device()
    figure = Figure(
        "fig17",
        "Cost model validation (2^29 uniform floats)",
        "k",
        "ms",
        paper_expectation=(
            "Predictions track the measurements, keep the same crossover, "
            "and underestimate slightly (peak-bandwidth assumption)."
        ),
    )
    data = uniform_floats(functional_n, seed)
    bitonic_measured = figure.add_series("bitonic-measured")
    bitonic_predicted = figure.add_series("bitonic-predicted")
    radix_measured = figure.add_series("radix-measured")
    radix_predicted = figure.add_series("radix-predicted")
    bitonic_model = BitonicModel(device)
    radix_model = RadixSelectModel(device)
    for k in (8, 16, 32, 64, 128, 256, 512, 1024):
        bitonic_measured.add(
            k, BitonicTopK(device).run(data, k, model_n=PAPER_N).simulated_ms(device)
        )
        bitonic_predicted.add(k, bitonic_model.predict_ms(PAPER_N, k))
        radix_measured.add(
            k,
            RadixSelectTopK(device).run(data, k, model_n=PAPER_N).simulated_ms(device),
        )
        radix_predicted.add(k, radix_model.predict_ms(PAPER_N, k))
    return figure


def figure_18(
    functional_n: int = DEFAULT_FUNCTIONAL_N,
    device: DeviceSpec | None = None,
    seed: int = 0,
) -> Figure:
    """Figure 18 (Appendix A): register vs shared-memory per-thread top-k."""
    device = device or get_device()
    figure = Figure(
        "fig18",
        "Per-thread top-k: registers vs shared memory (2^29 floats)",
        "k",
        "simulated ms",
        paper_expectation=(
            "The register variant wins slightly at small k but collapses "
            "past k = 32 when the buffer spills to local memory; the gap "
            "widens on increasing input (list updates cost k, heap log k) "
            "and closes on decreasing input (no updates)."
        ),
    )
    generators = {
        "uniform": uniform_floats,
        "increasing": increasing,
        "decreasing": decreasing,
    }
    for label, generator in generators.items():
        data = generator(functional_n, seed)
        shared_series = figure.add_series(f"shared-{label}")
        register_series = figure.add_series(f"registers-{label}")
        for k in (8, 16, 32, 64, 128, 256):
            shared = PerThreadTopK(device).run(data, k, model_n=PAPER_N)
            shared_series.add(k, shared.simulated_ms(device))
            registers = PerThreadRegisterTopK(device).run(data, k, model_n=PAPER_N)
            register_series.add(k, registers.simulated_ms(device))
    return figure


#: Figure id -> zero-argument experiment function (defaults applied).
REGISTRY: dict[str, Callable[[], Figure]] = {
    "fig08": figure_08,
    "abl43": ablation_43,
    "fig11a": figure_11a,
    "fig11b": figure_11b,
    "fig11c": figure_11c,
    "fig12a": figure_12a,
    "fig12b": figure_12b,
    "fig13": figure_13,
    "fig14": figure_14,
    "fig15a": lambda: figure_15(sorted_input=False),
    "fig15b": lambda: figure_15(sorted_input=True),
    "fig16a": figure_16a,
    "fig16b": figure_16b,
    "q3": query_3,
    "q4": query_4,
    "fig17": figure_17,
    "fig18": figure_18,
}


def run_figure(figure_id: str) -> Figure:
    """Run one registered experiment by id."""
    return REGISTRY[figure_id]()
