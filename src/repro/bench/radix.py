"""The radix-family benchmark behind ``repro radix-bench``.

Two sweeps, one report:

* **The k sweep** runs one fixed ``model n`` workload at every k in the
  grid through the RadiK-style adaptive kernel
  (:class:`~repro.algorithms.radik.RadiKTopK`), the paper's 2018 radix
  strawman (``radix-select``), and the bitonic network, reporting each
  point's **simulated milliseconds** — the deterministic figure CI gates
  on (wall clock is never reported, let alone gated) — plus bit-equality
  of the radix results against the canonical reference order.

* **The batch sweep** fuses a ``[batch, n]`` matrix through
  :func:`~repro.algorithms.radik.batched_radik_topk` at every batch size
  in the grid and compares against serving the same rows one query at a
  time — the launch-amortization claim of the batched operator.

The acceptance gates mirror the issue's criteria:

* every radix result (single and batched) is **bit-equal** to the
  reference order, values *and* indices;
* the **monotonic large-k gate**: RadiK's speedup over the bitonic
  network is **non-decreasing in k** across the sweep (bitonic's cost
  grows steeply with the network width while the radix passes are
  nearly k-independent — the paper's Figure 11 shape), RadiK is **no
  slower than the strawman** at every k >= :data:`GATE_LARGE_K`, and it
  **overtakes bitonic** by the largest gated k — the crossover that
  motivates planning radix at large k in the first place;
* the fused batch **beats per-query execution at every batch >= 2**.

CI additionally gates every point's simulated milliseconds against the
committed ``benchmarks/baselines/BENCH_radix.json`` via
:func:`check_baseline`.

Functional arrays are capped at ``functional_cap`` elements (exactness
is checked on the functional payload; the trace models the full
``model n`` via the measured per-pass survivor fractions), so the sweep
stays fast enough for CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import reference_topk
from repro.algorithms.radik import RadiKTopK, batched_radik_topk
from repro.core.topk import topk
from repro.errors import InvalidParameterError, ResourceExhaustedError
from repro.gpu.device import DeviceSpec, get_device
from repro.bench.common import BASELINE_TOLERANCE, drifted
from repro.gpu.timing import trace_time

#: JSON schema tag of a serialized report.
REPORT_FORMAT = "repro-radix-bench"
REPORT_VERSION = 1

#: The k from which the large-k gate applies: RadiK must be no slower
#: than the strawman, with non-decreasing speedup, at every gated k.
GATE_LARGE_K = 1024


@dataclass
class RadixWorkload:
    """The two sweep grids: k at fixed ``model n``, and batch at fixed
    ``(batch_n, batch_k)``."""

    model_n: int = 1 << 26
    ks: tuple = (64, 256, 1024, 2048)
    functional_cap: int = 1 << 18
    batch_sizes: tuple = (1, 2, 4, 8)
    batch_n: int = 2048
    batch_k: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        self.model_n = int(self.model_n)
        self.ks = tuple(int(k) for k in self.ks)
        self.functional_cap = int(self.functional_cap)
        self.batch_sizes = tuple(int(b) for b in self.batch_sizes)
        self.batch_n = int(self.batch_n)
        self.batch_k = int(self.batch_k)
        if self.model_n < 1:
            raise InvalidParameterError(
                f"invalid workload: model_n = {self.model_n}"
            )
        if not self.ks:
            raise InvalidParameterError("the k sweep needs at least one k")
        if list(self.ks) != sorted(set(self.ks)):
            raise InvalidParameterError(
                f"k grid must be strictly increasing, got {self.ks}"
            )
        functional_n = min(self.model_n, self.functional_cap)
        if min(self.ks) < 1 or max(self.ks) > functional_n:
            raise InvalidParameterError(
                f"every k must be in [1, {functional_n}], got {self.ks}"
            )
        if not self.batch_sizes:
            raise InvalidParameterError(
                "the batch sweep needs at least one batch size"
            )
        if list(self.batch_sizes) != sorted(set(self.batch_sizes)):
            raise InvalidParameterError(
                f"batch sizes must be strictly increasing, "
                f"got {self.batch_sizes}"
            )
        if min(self.batch_sizes) < 1:
            raise InvalidParameterError(
                f"batch sizes must be positive, got {self.batch_sizes}"
            )
        if not 1 <= self.batch_k <= self.batch_n:
            raise InvalidParameterError(
                f"batch_k = {self.batch_k} must be in [1, {self.batch_n}]"
            )

    def data(self) -> np.ndarray:
        """The k sweep's functional payload, seeded by the workload
        coordinates so a re-run reproduces the curve exactly."""
        rng = np.random.default_rng([self.seed, self.model_n])
        functional_n = min(self.model_n, self.functional_cap)
        return rng.random(functional_n, dtype=np.float32)

    def batch_data(self, batch: int) -> np.ndarray:
        """One batch sweep payload of ``batch`` rows."""
        rng = np.random.default_rng([self.seed, self.batch_n, batch])
        return rng.random((batch, self.batch_n), dtype=np.float32)

    def to_dict(self) -> dict:
        return {
            "model_n": self.model_n,
            "ks": list(self.ks),
            "functional_cap": self.functional_cap,
            "batch_sizes": list(self.batch_sizes),
            "batch_n": self.batch_n,
            "batch_k": self.batch_k,
            "seed": self.seed,
        }


@dataclass
class RadixPoint:
    """One k's measurement: the three kernels side by side."""

    k: int
    radik_ms: float
    strawman_ms: float
    bitonic_ms: float | None
    #: RadiK's adaptive pass count (from the trace notes).
    passes: int
    #: Bit-equality of both radix results (values and indices) against
    #: the canonical reference order.
    identical: bool

    @property
    def speedup_vs_strawman(self) -> float:
        if self.radik_ms <= 0:
            return float("inf")
        return self.strawman_ms / self.radik_ms

    @property
    def speedup_vs_bitonic(self) -> float | None:
        if self.bitonic_ms is None:
            return None
        if self.radik_ms <= 0:
            return float("inf")
        return self.bitonic_ms / self.radik_ms

    def to_dict(self) -> dict:
        return {
            "k": self.k,
            "radik_ms": self.radik_ms,
            "strawman_ms": self.strawman_ms,
            "bitonic_ms": self.bitonic_ms,
            "passes": self.passes,
            "speedup_vs_strawman": self.speedup_vs_strawman,
            "speedup_vs_bitonic": self.speedup_vs_bitonic,
            "identical": self.identical,
        }


@dataclass
class BatchPoint:
    """One batch size's measurement: fused vs per-query execution."""

    batch: int
    batched_ms: float
    per_query_ms: float
    identical: bool

    @property
    def speedup(self) -> float:
        if self.batched_ms <= 0:
            return float("inf")
        return self.per_query_ms / self.batched_ms

    def to_dict(self) -> dict:
        return {
            "batch": self.batch,
            "batched_ms": self.batched_ms,
            "per_query_ms": self.per_query_ms,
            "speedup": self.speedup,
            "identical": self.identical,
        }


@dataclass
class RadixBenchReport:
    """Both sweeps plus the three gate verdicts."""

    workload: RadixWorkload
    device: str
    points: list = field(default_factory=list)
    batch_points: list = field(default_factory=list)

    @property
    def identical(self) -> bool:
        """Every radix result bit-equal to the reference order."""
        return all(p.identical for p in self.points) and all(
            p.identical for p in self.batch_points
        )

    def gated_points(self) -> list:
        """The large-k suffix of the k sweep the monotonic gate covers."""
        return [p for p in self.points if p.k >= GATE_LARGE_K]

    @property
    def large_k_monotonic(self) -> bool:
        """The monotonic large-k verdict: RadiK's speedup over bitonic
        never shrinks as k grows, RadiK beats the strawman at every
        gated k, and it has overtaken bitonic by the largest gated k."""
        gated = self.gated_points()
        if any(p.radik_ms > p.strawman_ms for p in gated):
            return False
        if gated and gated[-1].bitonic_ms is not None:
            if gated[-1].radik_ms > gated[-1].bitonic_ms:
                return False
        speedups = [
            p.speedup_vs_bitonic
            for p in self.points
            if p.speedup_vs_bitonic is not None
        ]
        return all(
            later >= earlier for earlier, later in zip(speedups, speedups[1:])
        )

    @property
    def batch_amortizes(self) -> bool:
        """The fused launch beats per-query execution at every batch >= 2."""
        return all(
            p.batched_ms < p.per_query_ms
            for p in self.batch_points
            if p.batch >= 2
        )

    @property
    def passed(self) -> bool:
        return self.identical and self.large_k_monotonic and self.batch_amortizes

    def to_dict(self) -> dict:
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "workload": self.workload.to_dict(),
            "device": self.device,
            "points": [p.to_dict() for p in self.points],
            "batch_points": [p.to_dict() for p in self.batch_points],
            "gates": {
                "large_k_from": GATE_LARGE_K,
                "identical": True,
                "batch_amortizes": True,
            },
            "identical": self.identical,
            "large_k_monotonic": self.large_k_monotonic,
            "batch_amortizes": self.batch_amortizes,
            "passed": self.passed,
        }

    def render(self) -> str:
        lines = [
            f"device       : {self.device}",
            f"k sweep      : model n = {self.workload.model_n}, "
            f"float32 uniform, seed = {self.workload.seed}",
            "",
            f"{'k':>6} {'radik ms':>10} {'strawman ms':>12} "
            f"{'bitonic ms':>11} {'vs straw':>9} {'vs biton':>9} "
            f"{'passes':>7} {'exact':>6}",
        ]
        for point in self.points:
            gated = " *" if point.k >= GATE_LARGE_K else ""
            bitonic = (
                f"{point.bitonic_ms:>11.4f}"
                if point.bitonic_ms is not None
                else f"{'-':>11}"
            )
            vs_bitonic = (
                f"{point.speedup_vs_bitonic:>8.2f}x"
                if point.speedup_vs_bitonic is not None
                else f"{'-':>9}"
            )
            lines.append(
                f"{point.k:>6} {point.radik_ms:>10.4f} "
                f"{point.strawman_ms:>12.4f} {bitonic} "
                f"{point.speedup_vs_strawman:>8.2f}x {vs_bitonic} "
                f"{point.passes:>7} "
                f"{'yes' if point.identical else 'NO':>6}{gated}"
            )
        lines.extend(
            [
                "",
                f"batch sweep  : n = {self.workload.batch_n}, "
                f"k = {self.workload.batch_k}",
                "",
                f"{'batch':>6} {'batched ms':>11} {'per-query ms':>13} "
                f"{'speedup':>8} {'exact':>6}",
            ]
        )
        for point in self.batch_points:
            lines.append(
                f"{point.batch:>6} {point.batched_ms:>11.4f} "
                f"{point.per_query_ms:>13.4f} {point.speedup:>7.2f}x "
                f"{'yes' if point.identical else 'NO':>6}"
            )
        verdict = "PASS" if self.passed else "FAIL"
        lines.append("")
        lines.append(
            f"gates        : bit-equal everywhere; speedup over bitonic "
            f"non-decreasing in k, radik no slower than the strawman at "
            f"k >= {GATE_LARGE_K} (*) and past bitonic by the top gated k; "
            f"the fused batch beats per-query at every batch >= 2 -> {verdict}"
        )
        return "\n".join(lines)


def _reference_rows(matrix: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row canonical reference of a [batch, n] matrix."""
    values = np.empty((matrix.shape[0], k), dtype=matrix.dtype)
    indices = np.empty((matrix.shape[0], k), dtype=np.int64)
    for row in range(matrix.shape[0]):
        values[row], indices[row] = reference_topk(matrix[row], k)
    return values, indices


def run_radix_benchmark(
    workload: RadixWorkload | None = None,
    device: DeviceSpec | None = None,
) -> RadixBenchReport:
    """Run both sweeps and assemble the report."""
    workload = workload or RadixWorkload()
    device = device or get_device()
    report = RadixBenchReport(workload=workload, device=device.name)

    data = workload.data()
    for k in workload.ks:
        oracle_values, oracle_indices = reference_topk(data, k)
        radik = topk(
            data, k, algorithm="radik", device=device, model_n=workload.model_n
        )
        strawman = topk(
            data,
            k,
            algorithm="radix-select",
            device=device,
            model_n=workload.model_n,
        )
        bitonic_ms = None
        try:
            bitonic = topk(
                data,
                k,
                algorithm="bitonic",
                device=device,
                model_n=workload.model_n,
            )
            bitonic_ms = bitonic.simulated_ms(device)
        except (InvalidParameterError, ResourceExhaustedError):
            pass  # past the network's supported k — reported as "-"
        identical = all(
            np.array_equal(result.values, oracle_values, equal_nan=True)
            and np.array_equal(result.indices, oracle_indices)
            for result in (radik, strawman)
        )
        report.points.append(
            RadixPoint(
                k=k,
                radik_ms=radik.simulated_ms(device),
                strawman_ms=strawman.simulated_ms(device),
                bitonic_ms=bitonic_ms,
                passes=int(radik.trace.notes.get("passes", 0)),
                identical=identical,
            )
        )

    single = RadiKTopK(device)
    for batch in workload.batch_sizes:
        matrix = workload.batch_data(batch)
        oracle_values, oracle_indices = _reference_rows(matrix, workload.batch_k)
        fused = batched_radik_topk(matrix, workload.batch_k, device=device)
        per_query_ms = sum(
            single.run(matrix[row], workload.batch_k).simulated_ms(device)
            for row in range(batch)
        )
        report.batch_points.append(
            BatchPoint(
                batch=batch,
                batched_ms=trace_time(fused.trace, device).total_ms,
                per_query_ms=per_query_ms,
                identical=bool(
                    np.array_equal(fused.values, oracle_values, equal_nan=True)
                    and np.array_equal(fused.indices, oracle_indices)
                ),
            )
        )
    return report


def check_baseline(report: RadixBenchReport, baseline: dict) -> list[str]:
    """Regression-gate a report against a committed baseline.

    Returns the list of violations (empty = pass).  Only deterministic
    quantities are gated — per-point simulated milliseconds (within
    :data:`BASELINE_TOLERANCE`), exactness, and the gate verdicts —
    never wall clock.
    """
    if baseline.get("format") != REPORT_FORMAT:
        return [f"baseline is not a {REPORT_FORMAT} document"]
    if baseline.get("workload") != report.workload.to_dict():
        return [
            "baseline workload differs from the benchmarked sweep: "
            f"{baseline.get('workload')} vs {report.workload.to_dict()}"
        ]
    problems = []
    measured = {p.k: p for p in report.points}
    for expected in baseline.get("points", []):
        point = measured.get(expected["k"])
        if point is None:
            problems.append(f"sweep is missing baseline point k={expected['k']}")
            continue
        label = f"point (k={expected['k']})"
        for key, value in (
            ("radik_ms", point.radik_ms),
            ("strawman_ms", point.strawman_ms),
        ):
            expected_ms = expected[key]
            if drifted(value, expected_ms):
                problems.append(
                    f"{label} {key} {value:.4f} deviates more than "
                    f"{BASELINE_TOLERANCE:.0%} from baseline {expected_ms:.4f}"
                )
        if expected.get("identical", True) and not point.identical:
            problems.append(
                f"{label} is no longer bit-equal to the reference"
            )
    measured_batches = {p.batch: p for p in report.batch_points}
    for expected in baseline.get("batch_points", []):
        point = measured_batches.get(expected["batch"])
        if point is None:
            problems.append(
                f"sweep is missing baseline point batch={expected['batch']}"
            )
            continue
        label = f"point (batch={expected['batch']})"
        expected_ms = expected["batched_ms"]
        if drifted(point.batched_ms, expected_ms):
            problems.append(
                f"{label} batched_ms {point.batched_ms:.4f} deviates more "
                f"than {BASELINE_TOLERANCE:.0%} from baseline {expected_ms:.4f}"
            )
        if expected.get("identical", True) and not point.identical:
            problems.append(
                f"{label} is no longer bit-equal to the reference"
            )
    if baseline.get("passed") and not report.passed:
        problems.append(
            "radix gates regressed: baseline passed exactness, the "
            f"large-k (>= {GATE_LARGE_K}) monotonic speedup, and batch "
            "amortization; this run does not"
        )
    return problems
