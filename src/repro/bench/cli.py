"""Command-line figure runner.

Regenerate any figure of the evaluation without pytest::

    python -m repro.bench fig11a
    python -m repro.bench abl43 fig17
    python -m repro.bench --list
    python -m repro.bench --all

CI smoke mode reruns a fast subset, writes the results as a run record,
and gates on the committed baseline (simulated-ms increases beyond the
tolerance fail the build; getting faster never does)::

    python -m repro.bench --ci --out BENCH_ci.json \\
        --baseline benchmarks/baselines/BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import REGISTRY
from repro.bench.history import compare_run, load_run, save_run
from repro.bench.report import format_figure

#: The fast subset rerun on every CI push (well under a second combined;
#: the big sweep figures take seconds to minutes each).
CI_FIGURES = ("fig08", "abl43", "q4")

#: Relative simulated-ms increase tolerated before CI fails.
CI_TOLERANCE = 0.15


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate figures of the SIGMOD 2018 top-k evaluation.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help="figure ids to run (e.g. fig11a abl43 q4)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available figure ids and exit"
    )
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument(
        "--ci", action="store_true",
        help="run the fast CI subset and gate on a baseline",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the run's figures as a JSON run record",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="baseline run record to compare against (with --ci: gate)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=CI_TOLERANCE,
        help="relative simulated-ms increase tolerated before failing",
    )
    return parser


def _command_ci(arguments) -> int:
    figures = {figure_id: REGISTRY[figure_id]() for figure_id in CI_FIGURES}
    for figure in figures.values():
        print(format_figure(figure))
        print()
    if arguments.out:
        save_run(figures, arguments.out)
        print(f"wrote {arguments.out}")
    if not arguments.baseline:
        return 0
    baseline = load_run(arguments.baseline)
    regressions = compare_run(
        baseline, figures, tolerance=arguments.tolerance, slower_only=True
    )
    if regressions:
        print(
            f"\n{len(regressions)} simulated-ms regression(s) beyond "
            f"{arguments.tolerance:.0%} vs {arguments.baseline}:",
            file=sys.stderr,
        )
        for figure_id, regression in regressions:
            print(f"  {figure_id}: {regression}", file=sys.stderr)
        return 1
    print(f"no regressions beyond {arguments.tolerance:.0%} "
          f"vs {arguments.baseline}")
    return 0


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.list:
        for figure_id in REGISTRY:
            print(figure_id)
        return 0
    if arguments.ci:
        return _command_ci(arguments)
    requested = list(REGISTRY) if arguments.all else arguments.figures
    if not requested:
        build_parser().print_help()
        return 2
    unknown = [figure_id for figure_id in requested if figure_id not in REGISTRY]
    if unknown:
        print(
            f"unknown figure(s): {', '.join(unknown)}; "
            f"available: {', '.join(REGISTRY)}",
            file=sys.stderr,
        )
        return 2
    figures = {}
    for figure_id in requested:
        figures[figure_id] = REGISTRY[figure_id]()
        print(format_figure(figures[figure_id]))
        print()
    if arguments.out:
        save_run(figures, arguments.out)
        print(f"wrote {arguments.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
