"""Command-line figure runner.

Regenerate any figure of the evaluation without pytest::

    python -m repro.bench fig11a
    python -m repro.bench abl43 fig17
    python -m repro.bench --list
    python -m repro.bench --all
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import REGISTRY
from repro.bench.report import format_figure


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate figures of the SIGMOD 2018 top-k evaluation.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help="figure ids to run (e.g. fig11a abl43 q4)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available figure ids and exit"
    )
    parser.add_argument("--all", action="store_true", help="run every figure")
    return parser


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.list:
        for figure_id in REGISTRY:
            print(figure_id)
        return 0
    requested = list(REGISTRY) if arguments.all else arguments.figures
    if not requested:
        build_parser().print_help()
        return 2
    unknown = [figure_id for figure_id in requested if figure_id not in REGISTRY]
    if unknown:
        print(
            f"unknown figure(s): {', '.join(unknown)}; "
            f"available: {', '.join(REGISTRY)}",
            file=sys.stderr,
        )
        return 2
    for figure_id in requested:
        print(format_figure(REGISTRY[figure_id]()))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
