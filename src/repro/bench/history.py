"""Benchmark result history: save figure series, compare across runs.

Long-lived reproductions need regression tracking on the *simulated*
numbers, not just pytest-benchmark's wall-clock: a change to the bank
model or a kernel plan should surface as a delta on the affected figures.
``save_figure`` serializes a figure's series to JSON; ``compare`` diffs two
recordings and flags series points whose relative change exceeds a
tolerance.

The run-level variants (``save_run`` / ``load_run`` / ``compare_run``)
bundle several figures into one JSON document — the shape CI's
``bench-smoke`` job commits as its baseline and gates against, with
``slower_only=True`` so improvements never fail the build.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.bench.report import Figure
from repro.errors import InvalidParameterError


def figure_to_record(figure: Figure) -> dict:
    """JSON-serializable representation of a figure."""
    return {
        "figure_id": figure.figure_id,
        "title": figure.title,
        "x_label": figure.x_label,
        "y_label": figure.y_label,
        "series": {
            series.name: {str(x): y for x, y in series.points.items()}
            for series in figure.series
        },
    }


def record_to_figure(record: dict) -> Figure:
    """Rebuild a figure from its JSON record (x values become strings)."""
    figure = Figure(
        record["figure_id"],
        record["title"],
        record["x_label"],
        record["y_label"],
    )
    for name, points in record["series"].items():
        series = figure.add_series(name)
        for x, y in points.items():
            series.add(x, y)
    return figure


def save_figure(figure: Figure, path: str | Path) -> None:
    """Write a figure's series to a JSON file."""
    Path(path).write_text(json.dumps(figure_to_record(figure), indent=2))


def load_figure(path: str | Path) -> Figure:
    """Load a previously saved figure."""
    try:
        record = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise InvalidParameterError(f"cannot load figure from {path}: {error}")
    return record_to_figure(record)


@dataclass(frozen=True)
class Regression:
    """One point whose value moved more than the tolerance."""

    series: str
    x: str
    before: float
    after: float

    @property
    def ratio(self) -> float:
        if self.before == 0:
            return float("inf")
        return self.after / self.before

    def __str__(self) -> str:
        return (
            f"{self.series}[{self.x}]: {self.before:.3f} -> {self.after:.3f} "
            f"(x{self.ratio:.2f})"
        )


def compare(
    baseline: Figure,
    current: Figure,
    tolerance: float = 0.05,
    slower_only: bool = False,
) -> list[Regression]:
    """Points whose relative change exceeds ``tolerance``.

    Missing series/points are ignored (new experiments are not
    regressions); only overlapping points are compared.  With
    ``slower_only`` a point only counts when it *increased* — the CI gate
    for lower-is-better simulated-ms figures, where getting faster is an
    improvement, not a regression.
    """
    if tolerance < 0:
        raise InvalidParameterError("tolerance must be non-negative")
    regressions: list[Regression] = []
    baseline_series = {series.name: series for series in baseline.series}
    for series in current.series:
        before_series = baseline_series.get(series.name)
        if before_series is None:
            continue
        before_points = {str(x): y for x, y in before_series.points.items()}
        for x, after in series.points.items():
            before = before_points.get(str(x))
            if before is None:
                continue
            delta = after - before
            if slower_only and delta <= 0:
                continue
            scale = max(abs(before), 1e-12)
            if abs(delta) / scale > tolerance:
                regressions.append(
                    Regression(series=series.name, x=str(x), before=before,
                               after=after)
                )
    return regressions


# -- Run-level history (several figures per document) --------------------

RUN_FORMAT = "repro-bench-run"


def run_to_record(figures: dict[str, Figure]) -> dict:
    """JSON-serializable representation of a whole benchmark run."""
    return {
        "format": RUN_FORMAT,
        "version": 1,
        "figures": {
            figure_id: figure_to_record(figure)
            for figure_id, figure in figures.items()
        },
    }


def record_to_run(record: dict) -> dict[str, Figure]:
    if record.get("format") != RUN_FORMAT:
        raise InvalidParameterError(
            f"not a benchmark run record (format={record.get('format')!r})"
        )
    return {
        figure_id: record_to_figure(figure_record)
        for figure_id, figure_record in record["figures"].items()
    }


def save_run(figures: dict[str, Figure], path: str | Path) -> None:
    """Write a multi-figure benchmark run to a JSON file."""
    Path(path).write_text(json.dumps(run_to_record(figures), indent=2) + "\n")


def load_run(path: str | Path) -> dict[str, Figure]:
    """Load a previously saved benchmark run."""
    try:
        record = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise InvalidParameterError(f"cannot load run from {path}: {error}")
    return record_to_run(record)


def compare_run(
    baseline: dict[str, Figure],
    current: dict[str, Figure],
    tolerance: float = 0.15,
    slower_only: bool = True,
) -> list[tuple[str, Regression]]:
    """Compare two runs; returns ``(figure_id, regression)`` pairs.

    Figures present in only one run are ignored, mirroring
    :func:`compare`'s treatment of series and points.
    """
    regressions: list[tuple[str, Regression]] = []
    for figure_id, current_figure in current.items():
        baseline_figure = baseline.get(figure_id)
        if baseline_figure is None:
            continue
        for regression in compare(
            baseline_figure, current_figure, tolerance, slower_only
        ):
            regressions.append((figure_id, regression))
    return regressions
