"""ASCII reporting for benchmark results.

The harness prints each figure as an aligned table: one row per x value
(k, data size, selectivity, ...) and one column per algorithm/strategy,
so the console output reads like the paper's figures in tabular form.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Series:
    """One line of a figure: y values indexed by x."""

    name: str
    points: dict[object, float] = field(default_factory=dict)

    def add(self, x: object, y: float) -> None:
        self.points[x] = y

    def xs(self) -> list[object]:
        return list(self.points)


@dataclass
class Figure:
    """A reproduced figure: title, axis, series, and commentary."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    paper_expectation: str = ""

    def series_by_name(self, name: str) -> Series:
        for candidate in self.series:
            if candidate.name == name:
                return candidate
        raise KeyError(f"figure {self.figure_id} has no series {name!r}")

    def add_series(self, name: str) -> Series:
        series = Series(name)
        self.series.append(series)
        return series

    def all_xs(self) -> list[object]:
        seen: dict[object, None] = {}
        for series in self.series:
            for x in series.points:
                seen.setdefault(x)
        return list(seen)


def format_figure(figure: Figure, float_format: str = "{:10.3f}") -> str:
    """Render a figure as an aligned ASCII table."""
    xs = figure.all_xs()
    name_width = max(12, max((len(s.name) for s in figure.series), default=12))
    header = [f"{figure.x_label:>12}"] + [
        f"{series.name:>{name_width}}" for series in figure.series
    ]
    lines = [
        f"== {figure.figure_id}: {figure.title} ==",
        f"   (y = {figure.y_label})",
        " ".join(header),
    ]
    for x in xs:
        row = [f"{str(x):>12}"]
        for series in figure.series:
            if x in series.points:
                row.append(f"{float_format.format(series.points[x]):>{name_width}}")
            else:
                row.append(f"{'-':>{name_width}}")
        lines.append(" ".join(row))
    if figure.paper_expectation:
        lines.append(f"paper: {figure.paper_expectation}")
    for note in figure.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def record_figure(benchmark, figure: Figure) -> None:
    """Print a reproduced figure and attach its series to a pytest-benchmark
    record (via ``extra_info``), so ``--benchmark-json`` exports carry the
    simulated series alongside the wall-clock numbers."""
    print()
    print(format_figure(figure))
    benchmark.extra_info["figure"] = figure.figure_id
    benchmark.extra_info["series"] = {
        series.name: {str(x): y for x, y in series.points.items()}
        for series in figure.series
    }


def format_comparison(
    label: str, paper_value: float, measured_value: float, unit: str = "ms"
) -> str:
    """One paper-vs-measured line for EXPERIMENTS.md."""
    ratio = measured_value / paper_value if paper_value else float("nan")
    return (
        f"{label}: paper {paper_value:.2f} {unit}, "
        f"measured {measured_value:.2f} {unit} (x{ratio:.2f})"
    )
