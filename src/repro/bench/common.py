"""Shared bench-CLI plumbing: report output, gates, and baseline checks.

Every benchmark front door (``serve-bench``, ``approx-bench``,
``shard-bench``, ``slo-bench``, ``radix-bench``, ``stream-bench``,
``calibrate``) follows one contract:

* ``--json`` / ``--out`` — print the report as JSON (or its rendered
  text) and optionally write the JSON artifact to a path CI uploads;
* property gates — each failed gate prints one ``error: ...`` line on
  stderr and the command exits non-zero;
* ``--baseline`` — compare headline numbers against a committed
  ``BENCH_*.json`` within the shared relative tolerance
  (:data:`BASELINE_TOLERANCE`), printing one ``baseline regression:``
  line per drifted number.

This module is that contract, written once: argument wiring
(:func:`add_report_arguments`), artifact/print plumbing
(:func:`write_report`), gate evaluation (:func:`apply_gates`), the
tolerance predicate every ``check_baseline`` uses (:func:`drifted`), and
the end-to-end tail a bench command returns (:func:`finish_report`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Iterable

#: Relative tolerance of every BENCH_*.json baseline gate: a measured
#: number may drift this fraction from the committed expectation before
#: the gate trips (loose enough for runner jitter, tight enough to catch
#: real cost-model or scheduling regressions).
BASELINE_TOLERANCE = 0.15


def drifted(
    measured: float,
    expected: float,
    tolerance: float = BASELINE_TOLERANCE,
) -> bool:
    """True when ``measured`` falls outside the relative tolerance band.

    The band is relative to ``expected`` with a tiny absolute floor so a
    zero expectation doesn't demand exact equality of floats.
    """
    return abs(measured - expected) > tolerance * max(expected, 1e-9)


def add_report_arguments(
    parser: argparse.ArgumentParser, baseline_name: str | None = None
) -> None:
    """Wire the shared ``--json`` / ``--out`` / ``--baseline`` flags."""
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full report as JSON instead of the text summary",
    )
    parser.add_argument(
        "--out", default=None,
        help="also write the JSON report to this path",
    )
    if baseline_name is not None:
        parser.add_argument(
            "--baseline", default=None,
            help=f"gate the run against a committed {baseline_name} baseline",
        )


def write_report(report, arguments) -> dict:
    """Write the ``--out`` artifact and print the report; returns payload."""
    payload = report.to_dict()
    out = getattr(arguments, "out", None)
    if out:
        with open(out, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    if getattr(arguments, "json", False):
        print(json.dumps(payload, indent=2))
    else:
        print(report.render())
    return payload


def apply_gates(gates: Iterable[tuple[bool, str]]) -> int:
    """Evaluate (passed, message) gates; each failure is one stderr line."""
    status = 0
    for passed, message in gates:
        if not passed:
            print(f"error: {message}", file=sys.stderr)
            status = 1
    return status


def apply_baseline(
    report, baseline_path: str | None, check: Callable[[object, dict], list]
) -> int:
    """Load a committed baseline and report every drifted number."""
    if not baseline_path:
        return 0
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    problems = check(report, baseline)
    for problem in problems:
        print(f"baseline regression: {problem}", file=sys.stderr)
    return 1 if problems else 0


def finish_report(
    report,
    arguments,
    gates: Iterable[tuple[bool, str]] = (),
    check_baseline: Callable[[object, dict], list] | None = None,
) -> int:
    """The whole bench-command tail: artifact, print, gates, baseline."""
    write_report(report, arguments)
    status = apply_gates(gates)
    if check_baseline is not None:
        status = max(
            status,
            apply_baseline(
                report, getattr(arguments, "baseline", None), check_baseline
            ),
        )
    return status
