"""Benchmark harness: figure experiments, shared CLI plumbing, reporting."""

from repro.bench.common import (
    BASELINE_TOLERANCE,
    add_report_arguments,
    apply_baseline,
    apply_gates,
    drifted,
    finish_report,
    write_report,
)
from repro.bench.figures import (
    DEFAULT_FUNCTIONAL_N,
    K_SWEEP,
    PAPER_N,
    REGISTRY,
    run_figure,
)
from repro.bench.report import Figure, Series, format_comparison, format_figure

__all__ = [
    "BASELINE_TOLERANCE",
    "add_report_arguments",
    "apply_baseline",
    "apply_gates",
    "drifted",
    "finish_report",
    "write_report",
    "DEFAULT_FUNCTIONAL_N",
    "K_SWEEP",
    "PAPER_N",
    "REGISTRY",
    "run_figure",
    "Figure",
    "Series",
    "format_comparison",
    "format_figure",
]
