"""Benchmark harness: figure experiments and ASCII reporting."""

from repro.bench.figures import (
    DEFAULT_FUNCTIONAL_N,
    K_SWEEP,
    PAPER_N,
    REGISTRY,
    run_figure,
)
from repro.bench.report import Figure, Series, format_comparison, format_figure

__all__ = [
    "DEFAULT_FUNCTIONAL_N",
    "K_SWEEP",
    "PAPER_N",
    "REGISTRY",
    "run_figure",
    "Figure",
    "Series",
    "format_comparison",
    "format_figure",
]
