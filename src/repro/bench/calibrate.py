"""The calibration replay behind ``repro calibrate``.

Replays a seeded workload grid through the full calibration loop
(``docs/calibration.md``): every ``(n, k)`` configuration is planned by
the uncalibrated :class:`~repro.core.planner.TopKPlanner`, every ranked
candidate kernel is *executed* on the seeded payload, and each
``(predicted ms, observed simulated ms)`` pair is recorded into a
:class:`~repro.costmodel.calibration.CalibrationStore`.  One
:meth:`~repro.costmodel.calibration.CalibrationStore.refit` later, the
report compares per-kernel planner Q-error (``max(pred/obs, obs/pred)``)
**before** (raw Section 7 predictions) and **after** (predictions times
the fitted correction factors), and replays the planning decisions.

Everything is simulated milliseconds — deterministic for a given seed
and grid, which is what lets CI gate the run and lets the determinism
tests diff the persisted store byte for byte.

The acceptance gates mirror the issue's criteria:

* **Q-error improves** — the post-calibration p95 Q-error (overall and
  per fitted kernel) is no worse than pre-calibration;
* **decisions stay sound** — with the fitted corrections applied
  (``TopKPlanner(calibrate=True)``) every configuration's chosen kernel
  is observed-optimal within :data:`OPTIMALITY_TOLERANCE`, or at worst
  carries no more observed regret than the uncalibrated choice —
  corrections drifting a decision *away* from the observed optimum is
  what fails the gate;
* **the default stays bit-identical** — replanning every configuration
  with ``calibrate=False`` after the refit reproduces the original
  decision exactly (the knob's off position cannot drift, which is what
  keeps the EXPLAIN goldens stable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.topk import topk
from repro.costmodel.base import get_profile
from repro.costmodel.calibration import (
    CalibrationStore,
    q_error,
    record_sample,
)
from repro.errors import InvalidParameterError, ResourceExhaustedError
from repro.gpu.device import DeviceSpec, get_device

#: JSON schema tag of a serialized report.
REPORT_FORMAT = "repro-calibrate-report"
REPORT_VERSION = 1

#: A calibrated decision is "optimal" when its observed simulated time is
#: within this fraction of the best observed kernel for the shape —
#: corrected predictions are medians, not oracles, so photo-finish ties
#: must not fail the gate.
OPTIMALITY_TOLERANCE = 0.10


def _quantile(values: list[float], q: float) -> float | None:
    """Exact nearest-rank quantile (the Summary metric's convention)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[rank]


@dataclass
class CalibrationWorkload:
    """The seeded replay grid: every k at every n (where k <= n)."""

    ns: tuple = (1 << 14, 1 << 16, 1 << 18)
    ks: tuple = (8, 64, 256, 1024)
    profile_name: str = "uniform-float"
    seed: int = 0

    def __post_init__(self) -> None:
        self.ns = tuple(int(n) for n in self.ns)
        self.ks = tuple(int(k) for k in self.ks)
        self.profile_name = str(self.profile_name)
        self.seed = int(self.seed)
        if not self.ns:
            raise InvalidParameterError("the replay needs at least one n")
        if list(self.ns) != sorted(set(self.ns)):
            raise InvalidParameterError(
                f"n grid must be strictly increasing, got {self.ns}"
            )
        if min(self.ns) < 1:
            raise InvalidParameterError(f"n must be positive, got {self.ns}")
        if not self.ks:
            raise InvalidParameterError("the replay needs at least one k")
        if list(self.ks) != sorted(set(self.ks)):
            raise InvalidParameterError(
                f"k grid must be strictly increasing, got {self.ks}"
            )
        if min(self.ks) < 1:
            raise InvalidParameterError(f"k must be positive, got {self.ks}")
        if min(self.ks) > max(self.ns):
            raise InvalidParameterError(
                f"no k in {self.ks} fits the largest n ({max(self.ns)})"
            )
        get_profile(self.profile_name)  # validates the name
        if self.seed < 0:
            raise InvalidParameterError(f"seed must be >= 0, got {self.seed}")

    def configs(self) -> list[tuple[int, int]]:
        return [(n, k) for n in self.ns for k in self.ks if k <= n]

    def data(self, n: int) -> np.ndarray:
        """The functional payload for one n, seeded per (seed, n)."""
        rng = np.random.default_rng([self.seed, n])
        return rng.random(n, dtype=np.float32)

    def to_dict(self) -> dict:
        return {
            "ns": list(self.ns),
            "ks": list(self.ks),
            "profile": self.profile_name,
            "seed": self.seed,
        }


@dataclass
class CalibrationPoint:
    """One executed (configuration, kernel) pair of the replay."""

    n: int
    k: int
    kernel: str
    predicted_ms: float
    observed_ms: float
    corrected_ms: float | None = None

    @property
    def q_error_before(self) -> float:
        return q_error(self.predicted_ms, self.observed_ms)

    @property
    def q_error_after(self) -> float | None:
        if self.corrected_ms is None:
            return None
        return q_error(self.corrected_ms, self.observed_ms)

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "k": self.k,
            "kernel": self.kernel,
            "predicted_ms": self.predicted_ms,
            "observed_ms": self.observed_ms,
            "corrected_ms": self.corrected_ms,
            "q_error_before": self.q_error_before,
            "q_error_after": self.q_error_after,
        }


@dataclass
class DecisionPoint:
    """Planner decisions for one configuration, before and after."""

    n: int
    k: int
    baseline_choice: str
    replayed_choice: str
    calibrated_choice: str
    best_observed_kernel: str
    baseline_regret: float
    calibrated_regret: float

    @property
    def default_unchanged(self) -> bool:
        """calibrate=False must reproduce the original decision."""
        return self.replayed_choice == self.baseline_choice

    @property
    def calibrated_optimal(self) -> bool:
        """Corrections may only move decisions *toward* the observed
        optimum: the calibrated choice is either observed-optimal within
        tolerance, or carries no more observed regret than the
        uncalibrated choice did.  (A single multiplicative factor cannot
        repair an n-dependent miss — launch overhead at tiny n — so where
        the uncalibrated planner was already off, staying put is sound;
        getting *worse* is the drift this gate exists to catch.)"""
        return (
            self.calibrated_regret <= OPTIMALITY_TOLERANCE + 1e-9
            or self.calibrated_regret <= self.baseline_regret + 1e-9
        )

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "k": self.k,
            "baseline_choice": self.baseline_choice,
            "replayed_choice": self.replayed_choice,
            "calibrated_choice": self.calibrated_choice,
            "best_observed_kernel": self.best_observed_kernel,
            "baseline_regret": self.baseline_regret,
            "calibrated_regret": self.calibrated_regret,
            "default_unchanged": self.default_unchanged,
            "calibrated_optimal": self.calibrated_optimal,
        }


@dataclass
class CalibrationReport:
    """Everything the replay measured, plus the gates CI asserts."""

    workload: CalibrationWorkload
    device: str
    points: list = field(default_factory=list)
    decisions: list = field(default_factory=list)
    factors: dict = field(default_factory=dict)
    epoch: int = 0

    def kernel_names(self) -> list[str]:
        return sorted({point.kernel for point in self.points})

    def _q_errors(self, kernel: str | None, after: bool) -> list[float]:
        values = []
        for point in self.points:
            if kernel is not None and point.kernel != kernel:
                continue
            value = point.q_error_after if after else point.q_error_before
            if value is not None:
                values.append(value)
        return values

    def q_error_summary(self, kernel: str | None = None) -> dict:
        """p50 / p95 / max Q-error before and after, like the
        ``planner.q_error`` metric snapshot."""
        summary = {}
        for phase, after in (("before", False), ("after", True)):
            values = self._q_errors(kernel, after)
            summary[phase] = {
                "count": len(values),
                "p50": _quantile(values, 0.50),
                "p95": _quantile(values, 0.95),
                "max": _quantile(values, 1.00),
            }
        return summary

    # -- gates ------------------------------------------------------------

    @property
    def q_error_improves(self) -> bool:
        """Post-calibration p95 Q-error is no worse than pre, overall and
        for every fitted kernel."""
        overall = self.q_error_summary()
        if overall["after"]["p95"] is None or overall["before"]["p95"] is None:
            return False
        if overall["after"]["p95"] > overall["before"]["p95"] + 1e-9:
            return False
        for kernel in self.kernel_names():
            if kernel not in self.factors:
                continue  # below the minimum-sample floor: factor 1.0
            summary = self.q_error_summary(kernel)
            if summary["after"]["p95"] > summary["before"]["p95"] + 1e-9:
                return False
        return True

    @property
    def decisions_optimal(self) -> bool:
        return all(decision.calibrated_optimal for decision in self.decisions)

    @property
    def default_unchanged(self) -> bool:
        return all(decision.default_unchanged for decision in self.decisions)

    @property
    def passed(self) -> bool:
        return (
            self.q_error_improves
            and self.decisions_optimal
            and self.default_unchanged
        )

    def to_dict(self) -> dict:
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "device": self.device,
            "workload": self.workload.to_dict(),
            "factors": {name: self.factors[name] for name in sorted(self.factors)},
            "epoch": self.epoch,
            "q_error": {
                "overall": self.q_error_summary(),
                "by_kernel": {
                    kernel: self.q_error_summary(kernel)
                    for kernel in self.kernel_names()
                },
            },
            "points": [point.to_dict() for point in self.points],
            "decisions": [decision.to_dict() for decision in self.decisions],
            "q_error_improves": self.q_error_improves,
            "decisions_optimal": self.decisions_optimal,
            "default_unchanged": self.default_unchanged,
            "passed": self.passed,
        }

    def render(self) -> str:
        lines = []
        lines.append(
            f"calibration replay on {self.device} "
            f"(profile {self.workload.profile_name}, seed {self.workload.seed})"
        )
        lines.append(
            f"  {len(self.points)} samples over "
            f"{len(self.decisions)} configurations; store epoch {self.epoch}"
        )
        lines.append("")
        header = (
            f"  {'kernel':<14} {'samples':>7} {'factor':>8} "
            f"{'pre p50':>9} {'pre p95':>9} {'pre max':>9} "
            f"{'post p50':>9} {'post p95':>9} {'post max':>9}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for kernel in self.kernel_names():
            summary = self.q_error_summary(kernel)
            factor = self.factors.get(kernel)
            factor_cell = f"{factor:>8.3f}" if factor is not None else f"{'1.000*':>8}"
            lines.append(
                f"  {kernel:<14} {summary['before']['count']:>7} "
                f"{factor_cell} "
                f"{summary['before']['p50']:>9.2f} "
                f"{summary['before']['p95']:>9.2f} "
                f"{summary['before']['max']:>9.2f} "
                f"{summary['after']['p50']:>9.2f} "
                f"{summary['after']['p95']:>9.2f} "
                f"{summary['after']['max']:>9.2f}"
            )
        overall = self.q_error_summary()
        lines.append(
            f"  {'overall':<14} {overall['before']['count']:>7} {'':>8} "
            f"{overall['before']['p50']:>9.2f} "
            f"{overall['before']['p95']:>9.2f} "
            f"{overall['before']['max']:>9.2f} "
            f"{overall['after']['p50']:>9.2f} "
            f"{overall['after']['p95']:>9.2f} "
            f"{overall['after']['max']:>9.2f}"
        )
        lines.append("  (* below the minimum-sample floor; factor stays 1.0)")
        lines.append("")
        lines.append(
            f"  {'n':>8} {'k':>5} {'baseline':<14} {'calibrated':<14} "
            f"{'observed best':<14} {'regret':>7}"
        )
        for decision in self.decisions:
            marker = "" if decision.calibrated_optimal else "  !"
            lines.append(
                f"  {decision.n:>8} {decision.k:>5} "
                f"{decision.baseline_choice:<14} "
                f"{decision.calibrated_choice:<14} "
                f"{decision.best_observed_kernel:<14} "
                f"{decision.calibrated_regret:>6.1%}{marker}"
            )
        lines.append("")
        lines.append(
            f"  gates: q_error_improves={self.q_error_improves} "
            f"decisions_optimal={self.decisions_optimal} "
            f"default_unchanged={self.default_unchanged} "
            f"passed={self.passed}"
        )
        return "\n".join(lines)


def run_calibration_benchmark(
    workload: CalibrationWorkload | None = None,
    device: DeviceSpec | None = None,
    store: CalibrationStore | None = None,
) -> CalibrationReport:
    """Replay the grid, fit the store in place, and report the loop.

    ``store`` may carry samples from a previous run (``repro calibrate
    --load``); the replay's samples append to it and the refit sees both.
    """
    workload = workload or CalibrationWorkload()
    device = device or get_device()
    store = store or CalibrationStore()
    profile = get_profile(workload.profile_name)
    dtype = np.dtype(np.float32)

    from repro.core.planner import TopKPlanner

    planner = TopKPlanner(device)
    report = CalibrationReport(workload=workload, device=device.name)
    observed_by_config: dict[tuple[int, int], dict[str, float]] = {}
    plans = {}
    for n, k in workload.configs():
        data = workload.data(n)
        plan = planner.choose(n, k, dtype, profile)
        plans[(n, k)] = plan
        observed: dict[str, float] = {}
        for kernel, predicted_seconds in plan.candidates:
            try:
                result = topk(data, k, algorithm=kernel, device=device)
            except ResourceExhaustedError:
                # The model priced it, the implementation cannot run it
                # at this shape (occupancy limits): not a sample.
                continue
            observed_ms = result.simulated_ms(device)
            observed[kernel] = observed_ms
            point = CalibrationPoint(
                n=n,
                k=k,
                kernel=kernel,
                predicted_ms=predicted_seconds * 1e3,
                observed_ms=observed_ms,
            )
            report.points.append(point)
            record_sample(
                plan.fingerprint(),
                kernel,
                point.predicted_ms,
                point.observed_ms,
                store=store,
            )
        observed_by_config[(n, k)] = observed

    report.factors = store.refit()
    report.epoch = store.epoch

    for point in report.points:
        point.corrected_ms = store.correct(point.kernel, point.predicted_ms)

    replayed = TopKPlanner(device)  # calibrate=False: must not drift
    calibrated = TopKPlanner(device, calibration=store, calibrate=True)
    for n, k in workload.configs():
        observed = observed_by_config[(n, k)]
        if not observed:
            continue
        best_kernel = min(observed, key=lambda name: (observed[name], name))
        best_ms = observed[best_kernel]

        def regret(choice: str) -> float:
            if choice not in observed:
                # The chosen kernel never produced an observation (it
                # could not run at this shape): maximal regret.
                return float("inf")
            return observed[choice] / best_ms - 1.0

        baseline_choice = plans[(n, k)].algorithm
        replayed_choice = replayed.choose(n, k, dtype, profile).algorithm
        calibrated_choice = calibrated.choose(n, k, dtype, profile).algorithm
        report.decisions.append(
            DecisionPoint(
                n=n,
                k=k,
                baseline_choice=baseline_choice,
                replayed_choice=replayed_choice,
                calibrated_choice=calibrated_choice,
                best_observed_kernel=best_kernel,
                baseline_regret=regret(baseline_choice),
                calibrated_regret=regret(calibrated_choice),
            )
        )
    return report
