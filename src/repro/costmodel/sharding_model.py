"""Cost model for partition-parallel (sharded) execution.

Extends the Section 7 single-device models with a shard-count term: a
sharded plan's predicted time is the best single-device model evaluated
at *per-shard* scale (the devices run concurrently, so the critical path
is one shard's work) plus the scatter-gather overheads the executor's
trace charges — the PCIe gather of the per-shard candidates and the
final merge kernel.

The per-device threshold :data:`SHARD_MIN_ROWS` keeps the planner from
sharding small inputs, where the fixed gather/merge overhead exceeds the
saved kernel time and where a single device is comfortably within its
memory budget anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.costmodel.base import UNIFORM_FLOAT, WorkloadProfile
from repro.errors import InvalidParameterError, ResourceExhaustedError
from repro.gpu.device import DeviceSpec, get_device

#: Smallest n the planner considers sharding: one device's comfortable
#: capacity (2^22 rows — well under the crossover where the per-shard
#: kernel saving outweighs the fixed gather/merge overhead).
SHARD_MIN_ROWS = 1 << 22

#: Row-id bytes per gathered candidate (matches the executor's trace).
ROW_ID_BYTES = 4


@dataclass(frozen=True)
class ShardChoice:
    """The cost model's pick: shard count, predicted time, inner kernel."""

    shards: int
    seconds: float
    inner: str


def _shard_candidates(max_shards: int, n: int) -> list[int]:
    """Power-of-two shard counts to evaluate, capped at ``max_shards``
    and at one row per shard."""
    counts = []
    shards = 1
    while shards <= max_shards and shards <= n:
        counts.append(shards)
        shards *= 2
    return counts


def predict_sharded_seconds(
    n: int,
    k: int,
    dtype: np.dtype = np.dtype(np.float32),
    profile: WorkloadProfile = UNIFORM_FLOAT,
    device: DeviceSpec | None = None,
    shards: int = 2,
) -> tuple[float, str] | None:
    """Predicted seconds of an N-shard plan, and its inner kernel.

    The critical path is the cheapest feasible single-device model at
    per-shard scale (``ceil(n / shards)`` rows, k clamped to the shard),
    plus the candidate gather over PCIe and the merge kernel's global
    traffic.  Returns None when no model is feasible at per-shard scale.
    """
    from repro.costmodel.bitonic_model import BitonicModel
    from repro.costmodel.other_models import BucketSelectModel, PerThreadModel
    from repro.costmodel.radix_model import RadixSelectModel, SortModel

    device = device or get_device()
    dtype = np.dtype(dtype)
    per_shard = -(-n // shards)
    local_k = min(k, per_shard)
    best: tuple[float, str] | None = None
    for model_type in (
        BitonicModel,
        RadixSelectModel,
        SortModel,
        PerThreadModel,
        BucketSelectModel,
    ):
        model = model_type(device)
        if not model.supports(per_shard, local_k, dtype):
            continue
        try:
            seconds = model.predict_seconds(per_shard, local_k, dtype, profile)
        except ResourceExhaustedError:
            continue
        if best is None or seconds < best[0]:
            best = (seconds, model.algorithm)
    if best is None:
        return None
    candidate_bytes = float(shards * local_k) * (dtype.itemsize + ROW_ID_BYTES)
    gather = device.pcie_transfer_time(candidate_bytes)
    merge = device.global_read_time(
        candidate_bytes + float(k) * (dtype.itemsize + ROW_ID_BYTES)
    ) + device.kernel_launch_overhead
    return best[0] + gather + merge, best[1]


def choose_shards(
    n: int,
    k: int,
    dtype: np.dtype = np.dtype(np.float32),
    profile: WorkloadProfile = UNIFORM_FLOAT,
    device: DeviceSpec | None = None,
    max_shards: int = 1,
) -> ShardChoice | None:
    """The cheapest shard count (a power of two up to ``max_shards``).

    Returns None when nothing can be predicted (no feasible inner model
    at any candidate count) — the planner then plans single-device.
    """
    if isinstance(max_shards, bool) or not isinstance(
        max_shards, (int, np.integer)
    ):
        raise InvalidParameterError(
            f"max_shards must be an integer, got {type(max_shards).__name__}"
        )
    if max_shards < 1:
        raise InvalidParameterError(
            f"max_shards must be at least 1, got {max_shards}"
        )
    device = device or get_device()
    best: ShardChoice | None = None
    for shards in _shard_candidates(int(max_shards), n):
        predicted = predict_sharded_seconds(
            n, k, dtype, profile, device, shards
        )
        if predicted is None:
            continue
        seconds, inner = predicted
        if best is None or seconds < best.seconds:
            best = ShardChoice(shards=shards, seconds=seconds, inner=inner)
    return best
