"""Cost model for radix-based top-k (Section 7.1).

Pass i over D_Ii input bytes costs

    T_i1 = D_Ii / B_G + 16 * 4 * nt / B_G          (histogram)
    T_i2 = 2 * 16 * 4 * nt / B_G                   (prefix sum)
    T_i3 = D_Ii / B_G + eta_i * D_Ii / B_G         (cluster; skipped if
                                                    eta_i = 1)

with at most w/8 passes for w-bit keys, and D_{i+1} = eta_i * D_Ii.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import keys as keycodec
from repro.costmodel.base import UNIFORM_FLOAT, CostModel, WorkloadProfile
from repro.algorithms.radix_select import HISTOGRAM_INTS_PER_THREAD


class RadixSelectModel(CostModel):
    """Predicts radix-select runtime from the eta_i survivor fractions."""

    algorithm = "radix-select"

    def __init__(self, device=None, num_threads: int | None = None):
        super().__init__(device)
        self.num_threads = num_threads or self.device.total_cores * 8

    def _simulate(
        self,
        n: int,
        k: int,
        dtype: np.dtype,
        profile: WorkloadProfile,
        emitted_fractions: tuple[float, ...] | None = None,
    ) -> tuple[float, int]:
        """(predicted seconds, predicted pass count) for one selection."""
        dtype = np.dtype(dtype)
        width = keycodec.key_bytes(dtype)
        bandwidth = self.device.global_bandwidth
        histogram_bytes = HISTOGRAM_INTS_PER_THREAD * 4.0 * self.num_threads
        passes = keycodec.key_bits(dtype) // 8
        fractions = profile.radix_survivor_fractions
        total = 0.0
        executed = 0
        # Survivor count in *elements*, mirroring the candidate set of
        # RadixSelectTopK.  The algorithm only stops once the survivors
        # no longer exceed the result slots still open — ``remaining``
        # shrinks as higher buckets are emitted — so the break compares
        # against the remaining slots, not the original k.  Without
        # emitted fractions the model charges nothing to ``remaining``
        # and the condition degrades to the classic ``live <= k``.
        live = float(n)
        remaining = float(k)
        for index in range(passes):
            eta = fractions[index] if index < len(fractions) else fractions[-1]
            executed += 1
            total += (live * width + histogram_bytes) / bandwidth
            total += 2.0 * histogram_bytes / bandwidth
            if eta < 1.0:
                total += (1.0 + eta) * live * width / bandwidth
                if emitted_fractions is not None and index < len(emitted_fractions):
                    remaining -= live * emitted_fractions[index]
                live *= eta
                if remaining <= 1e-6 or live <= remaining + 1e-6:
                    break
        return total, executed

    def predict_seconds(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ) -> float:
        return self._simulate(n, k, dtype, profile)[0]

    def predict_passes(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
        emitted_fractions: tuple[float, ...] | None = None,
    ) -> int:
        """Pass count the model charges for — comparable to the trace note.

        With the measured per-pass ``emitted_fractions`` (the trace's
        ``emitted_i`` notes) alongside the survivor fractions, the loop
        terminates exactly where ``RadixSelectTopK`` did and the result
        equals the trace's ``passes`` note bit-for-bit.
        """
        return self._simulate(n, k, dtype, profile, emitted_fractions)[1]


class SortModel(CostModel):
    """Cost of the Sort-and-Choose baseline: w/8 full histogram+scatter passes.

    Independent of both k and the distribution, matching its flat lines.
    """

    algorithm = "sort"

    def __init__(self, device=None, num_threads: int | None = None):
        super().__init__(device)
        self.num_threads = num_threads or self.device.total_cores * 8

    def predict_seconds(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ) -> float:
        dtype = np.dtype(dtype)
        width = keycodec.key_bytes(dtype)
        bandwidth = self.device.global_bandwidth
        histogram_bytes = HISTOGRAM_INTS_PER_THREAD * 4.0 * self.num_threads
        data_bytes = float(n) * width
        passes = keycodec.key_bits(dtype) // 8
        per_pass = (
            (data_bytes + histogram_bytes)
            + 2.0 * histogram_bytes
            + 2.0 * data_bytes
        ) / bandwidth
        return passes * per_pass
