"""Cost model for radix-based top-k (Section 7.1).

Pass i over D_Ii input bytes costs

    T_i1 = D_Ii / B_G + 16 * 4 * nt / B_G          (histogram)
    T_i2 = 2 * 16 * 4 * nt / B_G                   (prefix sum)
    T_i3 = D_Ii / B_G + eta_i * D_Ii / B_G         (cluster; skipped if
                                                    eta_i = 1)

with at most w/8 passes for w-bit keys, and D_{i+1} = eta_i * D_Ii.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import keys as keycodec
from repro.costmodel.base import UNIFORM_FLOAT, CostModel, WorkloadProfile
from repro.algorithms.radix_select import HISTOGRAM_INTS_PER_THREAD


class RadixSelectModel(CostModel):
    """Predicts radix-select runtime from the eta_i survivor fractions."""

    algorithm = "radix-select"

    def __init__(self, device=None, num_threads: int | None = None):
        super().__init__(device)
        self.num_threads = num_threads or self.device.total_cores * 8

    def predict_seconds(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ) -> float:
        dtype = np.dtype(dtype)
        width = keycodec.key_bytes(dtype)
        bandwidth = self.device.global_bandwidth
        histogram_bytes = HISTOGRAM_INTS_PER_THREAD * 4.0 * self.num_threads
        passes = keycodec.key_bits(dtype) // 8
        fractions = profile.radix_survivor_fractions
        total = 0.0
        live = float(n) * width
        for index in range(passes):
            eta = fractions[index] if index < len(fractions) else fractions[-1]
            total += (live + histogram_bytes) / bandwidth
            total += 2.0 * histogram_bytes / bandwidth
            if eta < 1.0:
                total += (live + eta * live) / bandwidth
                live *= eta
            if live < width:
                break
        return total


class SortModel(CostModel):
    """Cost of the Sort-and-Choose baseline: w/8 full histogram+scatter passes.

    Independent of both k and the distribution, matching its flat lines.
    """

    algorithm = "sort"

    def __init__(self, device=None, num_threads: int | None = None):
        super().__init__(device)
        self.num_threads = num_threads or self.device.total_cores * 8

    def predict_seconds(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ) -> float:
        dtype = np.dtype(dtype)
        width = keycodec.key_bytes(dtype)
        bandwidth = self.device.global_bandwidth
        histogram_bytes = HISTOGRAM_INTS_PER_THREAD * 4.0 * self.num_threads
        data_bytes = float(n) * width
        passes = keycodec.key_bits(dtype) // 8
        per_pass = (
            (data_bytes + histogram_bytes)
            + 2.0 * histogram_bytes
            + 2.0 * data_bytes
        ) / bandwidth
        return passes * per_pass
