"""Self-calibrating cost models: close the predict/observe loop.

The Section 7 models predict with *peak* bandwidths, so they underestimate
the simulated (achievable-bandwidth) measurements by a systematic gap —
the paper's Figure 17 quantifies it at 12-15% and PR 8's RadiK kernel
moved it again.  This module closes the loop the ROADMAP calls unbuilt:

* :class:`CalibrationStore` — records ``(plan fingerprint, kernel,
  predicted ms, observed ms)`` samples from the tracer on every executed
  query, and fits per-kernel multiplicative correction factors with a
  robust weighted-median-of-ratios estimator (exponential decay over
  sample age, a minimum-sample floor below which the factor stays 1.0).
  Fitting is explicit (:meth:`CalibrationStore.refit`); a refit that
  changes any factor bumps the store's ``epoch``, which the serving
  plan-cache folds into its request fingerprints so stale decisions are
  never served across a correction drift.
* :class:`CalibratedModel` — a :class:`~repro.costmodel.base.CostModel`
  wrapper multiplying a base model's prediction by its kernel's fitted
  factor.  ``TopKPlanner(calibrate=True)`` prices every candidate through
  one; the default ``calibrate=False`` never constructs them, so planner
  decisions (and the EXPLAIN goldens pinned in CI) stay bit-identical.
* :func:`q_error` — the planner-accuracy metric ``max(pred/obs,
  obs/pred)``; :func:`record_sample` publishes it per kernel to the
  active metrics registry as the ``planner.q_error`` summary (p50 / p95 /
  max in every snapshot).

Capture is scoped, not global: :func:`capturing` installs a store in a
contextvar (mirroring the observability layer's tracer/metrics scoping),
``Session(calibration=store)`` does it per engine query, and
``python -m repro calibrate`` replays a seeded workload end to end —
record, refit, report per-kernel Q-error before/after.  See
``docs/calibration.md``.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

from repro import observability as obs
from repro.costmodel.base import CostModel, UNIFORM_FLOAT, WorkloadProfile
from repro.errors import InvalidParameterError
from repro.gpu.device import DeviceSpec

__all__ = [
    "STORE_FORMAT",
    "STORE_VERSION",
    "CalibratedModel",
    "CalibrationSample",
    "CalibrationStore",
    "active_store",
    "base_model_for",
    "capturing",
    "q_error",
    "record_sample",
]

#: Tags every persisted store so stale files fail loudly instead of
#: silently fitting garbage.
STORE_FORMAT = "repro-calibration-store"
STORE_VERSION = 1

#: Exponential decay per step of sample age: the newest sample of a kernel
#: weighs 1.0, the one before it ``DECAY``, then ``DECAY ** 2``, ...  so a
#: drifted kernel re-converges within a few dozen queries.
DEFAULT_DECAY = 0.9

#: Below this many samples a kernel's factor stays 1.0 — one noisy query
#: must not swing planning decisions.
DEFAULT_MIN_SAMPLES = 5

#: Samples retained per kernel; older ones fall off (they would carry
#: negligible weight anyway and the store must stay bounded).
DEFAULT_WINDOW = 256


def q_error(predicted_ms: float, observed_ms: float) -> float:
    """The planner-accuracy metric: ``max(pred/obs, obs/pred)``.

    Symmetric (over- and under-estimation score the same) and
    multiplicative (1.0 = perfect, 2.0 = off by 2x in either direction) —
    the standard cardinality-estimation accuracy measure, applied here to
    cost predictions.  Both inputs must be positive: a zero-cost
    prediction or observation has no meaningful ratio.
    """
    predicted = float(predicted_ms)
    observed = float(observed_ms)
    if predicted <= 0.0 or observed <= 0.0:
        raise InvalidParameterError(
            "q_error needs positive predicted and observed times, got "
            f"predicted = {predicted}, observed = {observed}"
        )
    return max(predicted / observed, observed / predicted)


@dataclass(frozen=True)
class CalibrationSample:
    """One closed prediction loop: what the planner said vs what ran."""

    fingerprint: str
    kernel: str
    predicted_ms: float
    observed_ms: float

    @property
    def ratio(self) -> float:
        """Observed over predicted — the quantity the fitter medians."""
        return self.observed_ms / self.predicted_ms

    @property
    def q_error(self) -> float:
        return q_error(self.predicted_ms, self.observed_ms)

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "kernel": self.kernel,
            "predicted_ms": self.predicted_ms,
            "observed_ms": self.observed_ms,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CalibrationSample":
        return cls(
            fingerprint=str(payload["fingerprint"]),
            kernel=str(payload["kernel"]),
            predicted_ms=float(payload["predicted_ms"]),
            observed_ms=float(payload["observed_ms"]),
        )


def _weighted_median(values: list[float], weights: list[float]) -> float:
    """Smallest value whose cumulative weight reaches half the total.

    Deterministic (ties resolve to the lower value) and robust: a single
    wild outlier moves the estimate by at most one rank, where a weighted
    mean would chase it.
    """
    order = sorted(range(len(values)), key=lambda index: values[index])
    total = sum(weights)
    accumulated = 0.0
    for index in order:
        accumulated += weights[index]
        if accumulated >= total / 2.0:
            return values[index]
    return values[order[-1]]


class CalibrationStore:
    """Samples in, per-kernel correction factors out.

    ``record`` only accumulates; ``refit`` is the explicit fitting step
    (callers decide the cadence — the ``repro calibrate`` replay refits
    once at the end, a server would refit between batches).  A refit that
    changes any factor bumps ``epoch``; unchanged refits do not, so
    plan-cache keys (which include the epoch) stay stable under a steady
    workload.
    """

    def __init__(
        self,
        decay: float = DEFAULT_DECAY,
        min_samples: int = DEFAULT_MIN_SAMPLES,
        window: int = DEFAULT_WINDOW,
    ):
        if not 0.0 < decay <= 1.0:
            raise InvalidParameterError(
                f"decay must be in (0, 1], got {decay}"
            )
        if min_samples < 1:
            raise InvalidParameterError(
                f"min_samples must be at least 1, got {min_samples}"
            )
        if window < min_samples:
            raise InvalidParameterError(
                f"window ({window}) must hold at least min_samples "
                f"({min_samples})"
            )
        self.decay = float(decay)
        self.min_samples = int(min_samples)
        self.window = int(window)
        self.epoch = 0
        self._samples: dict[str, list[CalibrationSample]] = {}
        self._factors: dict[str, float] = {}

    # -- recording --------------------------------------------------------

    def record(self, sample: CalibrationSample) -> None:
        """Append one sample; oldest falls off past the window."""
        if sample.predicted_ms <= 0.0 or sample.observed_ms <= 0.0:
            raise InvalidParameterError(
                "calibration samples need positive predicted and observed "
                f"times, got {sample}"
            )
        history = self._samples.setdefault(sample.kernel, [])
        history.append(sample)
        if len(history) > self.window:
            del history[: len(history) - self.window]

    def samples(self, kernel: str | None = None) -> list[CalibrationSample]:
        if kernel is not None:
            return list(self._samples.get(kernel, ()))
        return [
            sample
            for name in sorted(self._samples)
            for sample in self._samples[name]
        ]

    def sample_count(self, kernel: str | None = None) -> int:
        return len(self.samples(kernel))

    def kernels(self) -> list[str]:
        return sorted(self._samples)

    # -- fitting ----------------------------------------------------------

    def refit(self) -> dict[str, float]:
        """Fit per-kernel factors; bump the epoch iff any factor changed.

        The estimator is the weighted median of ``observed / predicted``
        ratios, newest samples weighted ``decay ** age`` — robust to
        outlier queries, responsive to genuine drift.  Kernels below the
        minimum-sample floor get no entry (``factor`` answers 1.0).
        """
        fitted: dict[str, float] = {}
        for kernel in sorted(self._samples):
            history = self._samples[kernel]
            if len(history) < self.min_samples:
                continue
            ratios = [sample.ratio for sample in history]
            weights = [
                self.decay ** (len(history) - 1 - index)
                for index in range(len(history))
            ]
            fitted[kernel] = _weighted_median(ratios, weights)
        if fitted != self._factors:
            self._factors = fitted
            self.epoch += 1
        return dict(self._factors)

    def factor(self, kernel: str) -> float:
        """The fitted multiplicative correction (1.0 until fitted)."""
        return self._factors.get(kernel, 1.0)

    def factors(self) -> dict[str, float]:
        return dict(self._factors)

    def correct(self, kernel: str, predicted_seconds: float) -> float:
        return self.factor(kernel) * predicted_seconds

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready payload; key order is canonical for byte-stable
        persistence (the determinism CI coverage diffs the bytes)."""
        return {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "decay": self.decay,
            "min_samples": self.min_samples,
            "window": self.window,
            "epoch": self.epoch,
            "factors": {name: self._factors[name] for name in sorted(self._factors)},
            "samples": {
                name: [sample.to_dict() for sample in self._samples[name]]
                for name in sorted(self._samples)
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CalibrationStore":
        if payload.get("format") != STORE_FORMAT:
            raise InvalidParameterError(
                f"not a calibration store: format = {payload.get('format')!r}"
            )
        if payload.get("version") != STORE_VERSION:
            raise InvalidParameterError(
                f"unsupported calibration store version "
                f"{payload.get('version')!r} (expected {STORE_VERSION})"
            )
        store = cls(
            decay=float(payload.get("decay", DEFAULT_DECAY)),
            min_samples=int(payload.get("min_samples", DEFAULT_MIN_SAMPLES)),
            window=int(payload.get("window", DEFAULT_WINDOW)),
        )
        for kernel, rows in payload.get("samples", {}).items():
            store._samples[str(kernel)] = [
                CalibrationSample.from_dict(row) for row in rows
            ]
        store._factors = {
            str(kernel): float(value)
            for kernel, value in payload.get("factors", {}).items()
        }
        store.epoch = int(payload.get("epoch", 0))
        return store

    def save(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path) -> "CalibrationStore":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


class CalibratedModel(CostModel):
    """A cost model whose predictions pass through the fitted correction.

    Same interface as the wrapped model (``algorithm``, ``supports``,
    ``predict_seconds``), so the planner's ranking loop cannot tell the
    difference; the only change is the multiplicative factor the store
    has fitted for the kernel — 1.0 until enough samples accumulate.
    """

    def __init__(self, model: CostModel, store: CalibrationStore):
        super().__init__(model.device)
        self.model = model
        self.store = store
        self.algorithm = model.algorithm

    def supports(self, n: int, k: int, dtype) -> bool:
        return self.model.supports(n, k, dtype)

    def predict_seconds(
        self,
        n: int,
        k: int,
        dtype=None,
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ) -> float:
        import numpy as np

        dtype = np.dtype(np.float32) if dtype is None else np.dtype(dtype)
        raw = self.model.predict_seconds(n, k, dtype, profile)
        return self.store.correct(self.algorithm, raw)


def base_model_for(kernel: str, device: DeviceSpec) -> CostModel | None:
    """The uncalibrated Section 7 model for a registry kernel name.

    The engine's capture path uses this to price the kernel it is about
    to observe; kernels without a predictive model (the CPU-heap oracle,
    merge nodes) answer None and are simply not sampled.
    """
    from repro.costmodel.bitonic_model import BitonicModel
    from repro.costmodel.other_models import BucketSelectModel, PerThreadModel
    from repro.costmodel.radik_model import RadiKModel
    from repro.costmodel.radix_model import RadixSelectModel, SortModel

    classes = {
        "bitonic": BitonicModel,
        "radix-select": RadixSelectModel,
        "radik": RadiKModel,
        "sort": SortModel,
        "per-thread": PerThreadModel,
        "bucket-select": BucketSelectModel,
    }
    model_class = classes.get(kernel)
    return model_class(device) if model_class is not None else None


# -- scoped capture -------------------------------------------------------

#: The store the current execution context records into, mirroring the
#: observability layer's contextvar scoping (thread- and task-safe).
_ACTIVE_STORE: ContextVar[CalibrationStore | None] = ContextVar(
    "repro_calibration_store", default=None
)


def active_store() -> CalibrationStore | None:
    """The store installed by the innermost :func:`capturing` (or None)."""
    return _ACTIVE_STORE.get()


@contextmanager
def capturing(store: CalibrationStore):
    """Install ``store`` as the capture sink for the enclosed block."""
    token = _ACTIVE_STORE.set(store)
    try:
        yield store
    finally:
        _ACTIVE_STORE.reset(token)


def record_sample(
    fingerprint: str,
    kernel: str,
    predicted_ms: float,
    observed_ms: float,
    store: CalibrationStore | None = None,
) -> CalibrationSample | None:
    """Close one prediction loop: store the sample, publish its Q-error.

    Records into ``store`` (or the contextvar-active one), and observes
    ``planner.q_error{kernel=...}`` on the active metrics registry so
    planner accuracy surfaces as p50 / p95 / max summaries even when no
    store is installed.  Non-positive times (an empty selection, a
    zero-cost trace) are skipped — returns None.
    """
    if predicted_ms <= 0.0 or observed_ms <= 0.0:
        return None
    sample = CalibrationSample(
        fingerprint=fingerprint,
        kernel=kernel,
        predicted_ms=float(predicted_ms),
        observed_ms=float(observed_ms),
    )
    target = store if store is not None else active_store()
    if target is not None:
        target.record(sample)
    registry = obs.active_metrics()
    if registry is not None:
        registry.summary("planner.q_error", kernel=kernel).observe(
            sample.q_error
        )
    return sample
