"""Cost models for the remaining algorithms (beyond the paper's Section 7).

The paper models only its two best performers.  A query planner choosing
among all five needs estimates for the others too, so we extend the same
methodology:

* :class:`PerThreadModel` — coalesced scan derated by occupancy, plus the
  expected warp-serialized heap updates.  The expected insert count for an
  exchangeable (i.i.d.) stream of length m is sum_{i<=m} min(1, k/i)
  ~= k (1 + ln(m/k)); the sorted-ascending worst case inserts every
  element.
* :class:`BucketSelectModel` — min/max pass plus refinement passes with
  per-element atomic counting.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.per_thread import DEVICE_THREADS
from repro.costmodel.base import UNIFORM_FLOAT, CostModel, WorkloadProfile
from repro.gpu.occupancy import BlockResources, bandwidth_derating, occupancy


def expected_heap_inserts(stream_length: int, k: int) -> float:
    """Expected inserts for an i.i.d. stream (order-statistics argument)."""
    if stream_length <= k:
        return float(stream_length)
    return k * (1.0 + math.log(stream_length / k))


class PerThreadModel(CostModel):
    """Predicts per-thread heap top-k runtime."""

    algorithm = "per-thread"

    def __init__(self, device=None, device_threads: int = DEVICE_THREADS):
        super().__init__(device)
        self.device_threads = device_threads

    def supports(self, n: int, k: int, dtype: np.dtype) -> bool:
        return k * 32 * np.dtype(dtype).itemsize <= self.device.shared_memory_per_block

    def _occupancy(self, k: int, width: int) -> float:
        best = 0.0
        for threads in (256, 128, 64, 32):
            shared = k * threads * width
            if shared > self.device.shared_memory_per_block:
                continue
            resources = BlockResources(
                threads=threads, shared_memory_bytes=shared, registers_per_thread=40
            )
            best = max(best, occupancy(self.device, resources))
        return best

    def predict_seconds(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ) -> float:
        dtype = np.dtype(dtype)
        width = dtype.itemsize
        occupancy_value = self._occupancy(k, width)
        derate = bandwidth_derating(occupancy_value)
        scan = (float(n) * width) / (self.device.global_bandwidth * derate)

        stream = max(1, n // self.device_threads)
        if profile.every_element_inserts:
            inserts_per_thread = float(stream)
            warp_events = float(stream)
        else:
            inserts_per_thread = expected_heap_inserts(stream, k)
            # Any of the warp's 32 lanes inserting stalls the warp.
            warp_events = min(float(stream), inserts_per_thread * 32.0)
        update_depth = 2.0 * max(1.0, math.log2(max(k, 2)))
        warps = self.device_threads / self.device.warp_size
        serialized = warp_events * update_depth * warps * self.device.warp_size
        divergence = serialized / (self.device.total_cores * self.device.clock_hz)

        # Shared-memory traffic: one root comparison per element plus two
        # words per sift level per insert — the dominant term when every
        # element updates the heap (sorted input).
        total_inserts = inserts_per_thread * self.device_threads
        shared_bytes = float(n) * width + total_inserts * update_depth * 2.0 * width
        shared = shared_bytes / self.device.shared_bandwidth

        reduce = (
            float(self.device_threads * k) * width / self.device.global_bandwidth
        )
        return max(scan, shared) + divergence + reduce


class BucketSelectModel(CostModel):
    """Predicts bucket-select runtime (min/max pass + atomic refinements)."""

    algorithm = "bucket-select"

    def predict_seconds(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ) -> float:
        dtype = np.dtype(dtype)
        width = dtype.itemsize
        bandwidth = self.device.global_bandwidth
        total = float(n) * width / bandwidth  # min/max pass
        if k == 1:
            return total
        live = float(n)
        for eta in profile.bucket_survivor_fractions:
            count_pass = live * width / bandwidth
            atomic = live * self.device.atomic_op_cost / self.device.num_sms
            scatter = (live + eta * live) * width / bandwidth
            total += count_pass + atomic + scatter
            live *= eta
            if live < 1.0:
                break
        return total
