"""Cost model for the bucketed approximate top-k operator.

Follows the Section 7 conventions of the other models — peak bandwidths,
no launch overheads, compose per-kernel ``max(T_g, T_k)`` — over the two
kernels of :class:`repro.approx.bucketed.ApproxBucketTopK`: the streaming
bucket scan (one global read of the data, divergence charged for the
register-buffer inserts) and the exact bitonic merge over the
``buckets * khat`` candidates.

The model also owns the planner's configuration search
(:func:`choose_config`): among power-of-two bucket counts and small
oversampling factors it returns the cheapest configuration whose analytic
expected recall (:func:`repro.approx.recall.expected_recall`) meets the
caller's target, or None when only the exact algorithms can.
"""

from __future__ import annotations

import math

import numpy as np

from repro.approx.config import ApproxConfig
from repro.approx.recall import delegate_expected_recall, expected_recall
from repro.bitonic.kernels import build_trace
from repro.bitonic.optimizations import FULL, OptimizationFlags
from repro.costmodel.base import UNIFORM_FLOAT, CostModel, WorkloadProfile
from repro.gpu.occupancy import register_spill_fraction

#: Mirror of the operator's scan-kernel register accounting.
_REGISTER_OVERHEAD = 24
_REGISTER_BUDGET = 64
_ROW_ID_BYTES = 4

#: Candidate bucket counts the planner searches (powers of two keep the
#: merge network shapes friendly and the search tiny).
_BUCKET_CANDIDATES = tuple(1 << i for i in range(0, 13))
_OVERSAMPLE_CANDIDATES = (1, 2, 3, 4)


def _network_k(k: int) -> int:
    return 1 << max(0, (k - 1).bit_length())


class ApproxTopKModel(CostModel):
    """Predicts bucketed approximate top-k runtime for a configuration."""

    algorithm = "approx-bucket"

    def __init__(
        self,
        device=None,
        config: ApproxConfig | None = None,
        flags: OptimizationFlags = FULL,
    ):
        super().__init__(device)
        self.config = config or ApproxConfig()
        self.flags = flags

    def supports(self, n: int, k: int, dtype: np.dtype) -> bool:
        return 1 <= k <= 2048

    def expected_recall(self, n: int, k: int) -> float:
        """Analytic recall of the modeled configuration on (n, k)."""
        if self.config.delegate_group > 1:
            return delegate_expected_recall(n, k, self.config)
        return expected_recall(n, k, self.config)

    def predict_seconds(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ) -> float:
        dtype = np.dtype(dtype)
        width = dtype.itemsize
        config = self.config
        buckets = min(config.buckets, n)
        khat = config.khat(k)
        delegate = config.delegate_group if config.delegate_group > 1 else 0
        degenerate = (
            buckets == 1 or khat >= k or khat >= math.ceil(n / buckets)
        )
        if degenerate:
            return self._merge_seconds(n, k, width)

        # Scan kernel: one full read, candidate write, divergent inserts.
        if delegate:
            stream = math.ceil(n / delegate)
            written = buckets * khat * _ROW_ID_BYTES
        else:
            stream = n
            written = buckets * khat * (width + _ROW_ID_BYTES)
        if profile.every_element_inserts and config.seed is None:
            inserts = float(stream)
        else:
            per_bucket = max(1.0, stream / buckets)
            inserts = buckets * khat * (
                1.0 + math.log(max(per_bucket / khat, 1.0))
            )
        global_time = (n * width + written) / self.device.global_bandwidth
        registers = khat * max(1, width // 4) + _REGISTER_OVERHEAD
        spill = register_spill_fraction(registers, _REGISTER_BUDGET)
        if spill > 0.0:
            global_time += (
                inserts * spill * khat * width
            ) / self.device.global_bandwidth
        divergence_time = (
            inserts
            * khat
            * self.device.warp_size
            / (self.device.total_cores * self.device.clock_hz)
        )
        scan_time = max(global_time, divergence_time)

        if delegate:
            merge_input = min(n, buckets * khat * delegate)
        else:
            merge_input = buckets * khat
        return scan_time + self._merge_seconds(
            max(merge_input, 1), k, width + _ROW_ID_BYTES
        )

    def _merge_seconds(self, n: int, k: int, width: int) -> float:
        trace = build_trace(n, _network_k(k), width, self.flags, self.device)
        total = 0.0
        for kernel in trace.kernels:
            global_time = kernel.global_bytes / self.device.global_bandwidth
            shared_time = (
                kernel.shared_bytes_weighted / self.device.shared_bandwidth
            )
            total += max(global_time, shared_time)
        return total


def choose_config(
    n: int,
    k: int,
    recall_target: float,
    dtype: np.dtype = np.dtype(np.float32),
    device=None,
    profile: WorkloadProfile = UNIFORM_FLOAT,
) -> tuple[ApproxConfig, float, float] | None:
    """Cheapest approximate configuration meeting ``recall_target``.

    Returns ``(config, predicted_seconds, expected_recall)`` or None when
    no searched configuration is genuinely approximate (non-degenerate)
    and meets the target — the planner then stays exact.  A target of 1.0
    always returns None: only the exact algorithms guarantee it.
    """
    if not 0.0 < recall_target <= 1.0:
        raise ValueError(
            f"recall_target must be in (0, 1], got {recall_target}"
        )
    if recall_target >= 1.0:
        return None
    best: tuple[ApproxConfig, float, float] | None = None
    for buckets in _BUCKET_CANDIDATES:
        if buckets > n:
            break
        for oversample in _OVERSAMPLE_CANDIDATES:
            config = ApproxConfig(buckets=buckets, oversample=oversample)
            khat = config.khat(k)
            # Skip configurations that spill registers or degenerate to
            # the exact path (nothing saved, nothing to model).
            if khat * max(1, dtype.itemsize // 4) + _REGISTER_OVERHEAD > (
                _REGISTER_BUDGET
            ):
                continue
            if buckets == 1 or khat >= k or khat >= math.ceil(n / buckets):
                continue
            recall = expected_recall(n, k, config)
            if recall < recall_target:
                continue
            model = ApproxTopKModel(device, config)
            seconds = model.predict_seconds(n, k, dtype, profile)
            if best is None or seconds < best[1]:
                best = (config, seconds, recall)
    return best
