"""What-if hardware analysis: where do the decision boundaries move?

Section 7 motivates the cost models with portability: "to predict the
performance on different hardware".  This module asks the resulting
questions directly:

* :func:`crossover_vs_bandwidth_ratio` — the bitonic/radix-select
  crossover k as a function of the device's shared-to-global bandwidth
  ratio.  Bitonic top-k is shared-bound at interesting k while radix
  select is global-bound, so cards with relatively faster shared memory
  (the trend from Maxwell to Volta) push the crossover *up* — bitonic wins
  a wider range on newer hardware.
* :func:`sweep_devices` — every registered profile's planner choices over
  k, the table a deployment engineer would want.
* :func:`prediction_deltas` — given (kernel, predicted, observed) pairs,
  the accuracy table: the raw millisecond delta *and* the symmetric
  Q-error ``max(pred/obs, obs/pred)``.  A raw delta hides whether the
  model over- or under-shoots proportionally (a +5 ms miss is noise at
  100 ms and catastrophic at 1 ms); the Q-error is the number the
  calibration gate (``docs/calibration.md``) actually bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

import numpy as np

from repro.costmodel.base import UNIFORM_FLOAT, WorkloadProfile
from repro.costmodel.bitonic_model import BitonicModel
from repro.costmodel.calibration import q_error
from repro.costmodel.radix_model import RadixSelectModel
from repro.errors import InvalidParameterError
from repro.gpu.device import DeviceSpec, get_device, list_devices


@dataclass(frozen=True)
class CrossoverPoint:
    """One what-if sample: a device variant and its crossover k."""

    shared_to_global_ratio: float
    crossover_k: int | None


@dataclass(frozen=True)
class PredictionDelta:
    """Model accuracy on one sample: the raw delta and the Q-error."""

    kernel: str
    predicted_ms: float
    observed_ms: float

    @property
    def delta_ms(self) -> float:
        """Signed raw miss (positive = the model undershot)."""
        return self.observed_ms - self.predicted_ms

    @property
    def ratio(self) -> float:
        """Observed over predicted — what a correction factor must supply."""
        return self.observed_ms / self.predicted_ms

    @property
    def q_error(self) -> float:
        """``max(pred/obs, obs/pred)`` — 1.0 is perfect, symmetric."""
        return q_error(self.predicted_ms, self.observed_ms)

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "predicted_ms": self.predicted_ms,
            "observed_ms": self.observed_ms,
            "delta_ms": self.delta_ms,
            "ratio": self.ratio,
            "q_error": self.q_error,
        }


def prediction_deltas(
    samples: Iterable[tuple[str, float, float]],
) -> list[PredictionDelta]:
    """Accuracy rows for ``(kernel, predicted_ms, observed_ms)`` samples.

    Rejects non-positive times up front — a zero-cost prediction has no
    ratio, and silently dropping it would understate the miss.
    """
    deltas = []
    for kernel, predicted_ms, observed_ms in samples:
        if predicted_ms <= 0.0 or observed_ms <= 0.0:
            raise InvalidParameterError(
                "prediction samples need positive times, got "
                f"({kernel!r}, {predicted_ms}, {observed_ms})"
            )
        deltas.append(
            PredictionDelta(
                kernel=str(kernel),
                predicted_ms=float(predicted_ms),
                observed_ms=float(observed_ms),
            )
        )
    return deltas


def _crossover(device: DeviceSpec, n: int, dtype, profile) -> int | None:
    bitonic = BitonicModel(device)
    radix = RadixSelectModel(device)
    k = 1
    while k <= 4096:
        if not bitonic.supports(n, k, dtype) or (
            radix.predict_seconds(n, k, dtype, profile)
            < bitonic.predict_seconds(n, k, dtype, profile)
        ):
            return k
        k *= 2
    return None


def crossover_vs_bandwidth_ratio(
    ratios: list[float],
    n: int = 1 << 29,
    dtype=np.float32,
    profile: WorkloadProfile = UNIFORM_FLOAT,
    base_device: DeviceSpec | None = None,
) -> list[CrossoverPoint]:
    """Sweep the shared/global bandwidth ratio, holding global fixed.

    The Titan X Maxwell sits at a ratio of ~11.6 (2.9 TB/s over 251 GB/s);
    a V100 at ~15.3.  Higher ratios cheapen bitonic's shared-bound kernels
    without helping radix select, moving the crossover to larger k.
    """
    if not ratios:
        raise InvalidParameterError("provide at least one ratio")
    base = base_device or get_device()
    dtype = np.dtype(dtype)
    points = []
    for ratio in ratios:
        if ratio <= 0:
            raise InvalidParameterError("bandwidth ratios must be positive")
        variant = replace(
            base,
            name=f"{base.name}-ratio-{ratio:g}",
            shared_bandwidth=base.global_bandwidth * ratio,
        )
        points.append(
            CrossoverPoint(
                shared_to_global_ratio=ratio,
                crossover_k=_crossover(variant, n, dtype, profile),
            )
        )
    return points


def sweep_devices(
    n: int = 1 << 29,
    ks: tuple[int, ...] = (1, 16, 64, 256, 1024),
    dtype=np.float32,
    profile: WorkloadProfile = UNIFORM_FLOAT,
) -> dict[str, dict[int, str]]:
    """Planner choice per (device, k) across all registered profiles."""
    # Imported lazily: the planner package imports the cost models.
    from repro.core.planner import TopKPlanner

    dtype = np.dtype(dtype)
    table: dict[str, dict[int, str]] = {}
    for name in list_devices():
        planner = TopKPlanner(get_device(name))
        table[name] = {
            k: planner.choose(n, k, dtype, profile).algorithm for k in ks
        }
    return table
