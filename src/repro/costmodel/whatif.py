"""What-if hardware analysis: where do the decision boundaries move?

Section 7 motivates the cost models with portability: "to predict the
performance on different hardware".  This module asks the resulting
questions directly:

* :func:`crossover_vs_bandwidth_ratio` — the bitonic/radix-select
  crossover k as a function of the device's shared-to-global bandwidth
  ratio.  Bitonic top-k is shared-bound at interesting k while radix
  select is global-bound, so cards with relatively faster shared memory
  (the trend from Maxwell to Volta) push the crossover *up* — bitonic wins
  a wider range on newer hardware.
* :func:`sweep_devices` — every registered profile's planner choices over
  k, the table a deployment engineer would want.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.costmodel.base import UNIFORM_FLOAT, WorkloadProfile
from repro.costmodel.bitonic_model import BitonicModel
from repro.costmodel.radix_model import RadixSelectModel
from repro.errors import InvalidParameterError
from repro.gpu.device import DeviceSpec, get_device, list_devices


@dataclass(frozen=True)
class CrossoverPoint:
    """One what-if sample: a device variant and its crossover k."""

    shared_to_global_ratio: float
    crossover_k: int | None


def _crossover(device: DeviceSpec, n: int, dtype, profile) -> int | None:
    bitonic = BitonicModel(device)
    radix = RadixSelectModel(device)
    k = 1
    while k <= 4096:
        if not bitonic.supports(n, k, dtype) or (
            radix.predict_seconds(n, k, dtype, profile)
            < bitonic.predict_seconds(n, k, dtype, profile)
        ):
            return k
        k *= 2
    return None


def crossover_vs_bandwidth_ratio(
    ratios: list[float],
    n: int = 1 << 29,
    dtype=np.float32,
    profile: WorkloadProfile = UNIFORM_FLOAT,
    base_device: DeviceSpec | None = None,
) -> list[CrossoverPoint]:
    """Sweep the shared/global bandwidth ratio, holding global fixed.

    The Titan X Maxwell sits at a ratio of ~11.6 (2.9 TB/s over 251 GB/s);
    a V100 at ~15.3.  Higher ratios cheapen bitonic's shared-bound kernels
    without helping radix select, moving the crossover to larger k.
    """
    if not ratios:
        raise InvalidParameterError("provide at least one ratio")
    base = base_device or get_device()
    dtype = np.dtype(dtype)
    points = []
    for ratio in ratios:
        if ratio <= 0:
            raise InvalidParameterError("bandwidth ratios must be positive")
        variant = replace(
            base,
            name=f"{base.name}-ratio-{ratio:g}",
            shared_bandwidth=base.global_bandwidth * ratio,
        )
        points.append(
            CrossoverPoint(
                shared_to_global_ratio=ratio,
                crossover_k=_crossover(variant, n, dtype, profile),
            )
        )
    return points


def sweep_devices(
    n: int = 1 << 29,
    ks: tuple[int, ...] = (1, 16, 64, 256, 1024),
    dtype=np.float32,
    profile: WorkloadProfile = UNIFORM_FLOAT,
) -> dict[str, dict[int, str]]:
    """Planner choice per (device, k) across all registered profiles."""
    # Imported lazily: the planner package imports the cost models.
    from repro.core.planner import TopKPlanner

    dtype = np.dtype(dtype)
    table: dict[str, dict[int, str]] = {}
    for name in list_devices():
        planner = TopKPlanner(get_device(name))
        table[name] = {
            k: planner.choose(n, k, dtype, profile).algorithm for k in ks
        }
    return table
