"""Cost models (Section 7): predict algorithm runtimes for planning."""

from repro.costmodel.base import (
    BUCKET_KILLER,
    INCREASING_FLOAT,
    PROFILES,
    UNIFORM_FLOAT,
    UNIFORM_UINT,
    CostModel,
    WorkloadProfile,
    get_profile,
)
from repro.costmodel.approx_model import ApproxTopKModel, choose_config
from repro.costmodel.bitonic_model import BitonicModel
from repro.costmodel.calibration import (
    CalibratedModel,
    CalibrationSample,
    CalibrationStore,
    active_store,
    capturing,
    q_error,
    record_sample,
)
from repro.costmodel.other_models import (
    BucketSelectModel,
    PerThreadModel,
    expected_heap_inserts,
)
from repro.costmodel.radik_model import RadiKModel, eta_over_bits
from repro.costmodel.radix_model import RadixSelectModel, SortModel
from repro.costmodel.sharding_model import (
    SHARD_MIN_ROWS,
    ShardChoice,
    choose_shards,
    predict_sharded_seconds,
)
from repro.costmodel.streaming_model import StreamingModel
from repro.costmodel.whatif import (
    CrossoverPoint,
    PredictionDelta,
    crossover_vs_bandwidth_ratio,
    prediction_deltas,
    sweep_devices,
)

__all__ = [
    "BUCKET_KILLER",
    "INCREASING_FLOAT",
    "PROFILES",
    "UNIFORM_FLOAT",
    "UNIFORM_UINT",
    "CostModel",
    "WorkloadProfile",
    "get_profile",
    "ApproxTopKModel",
    "choose_config",
    "BitonicModel",
    "CalibratedModel",
    "CalibrationSample",
    "CalibrationStore",
    "active_store",
    "capturing",
    "q_error",
    "record_sample",
    "BucketSelectModel",
    "PerThreadModel",
    "expected_heap_inserts",
    "RadiKModel",
    "RadixSelectModel",
    "eta_over_bits",
    "SHARD_MIN_ROWS",
    "ShardChoice",
    "SortModel",
    "StreamingModel",
    "choose_shards",
    "predict_sharded_seconds",
    "CrossoverPoint",
    "PredictionDelta",
    "crossover_vs_bandwidth_ratio",
    "prediction_deltas",
    "sweep_devices",
]
