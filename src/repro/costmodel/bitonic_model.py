"""Cost model for bitonic top-k (Section 7.2).

Each fused kernel is bound by the slower of its global and shared memory
phases:

    T_g = D_in / B_G + D_in / (x * B_G)
    T_k = sum_i  delta_i * (D_Ii + D_Oi) / B_S
    T_kernel = max(T_g, T_k)

where x is the per-kernel reduction factor (elements per thread) and the
delta_i come from the bank-conflict analysis of the kernel's combined
steps.  The model composes the SortReducer with the following
BitonicReducers over the geometrically shrinking data.

Like the paper's model it uses peak bandwidths and ignores launch
overheads, so it underestimates the measured times (Figure 17).
"""

from __future__ import annotations


import numpy as np

from repro.bitonic.kernels import build_trace
from repro.bitonic.optimizations import FULL, OptimizationFlags
from repro.costmodel.base import UNIFORM_FLOAT, CostModel, WorkloadProfile


class BitonicModel(CostModel):
    """Predicts bitonic top-k runtime from the kernel structure."""

    algorithm = "bitonic"

    def __init__(self, device=None, flags: OptimizationFlags = FULL):
        super().__init__(device)
        self.flags = flags

    def supports(self, n: int, k: int, dtype: np.dtype) -> bool:
        return 1 <= k <= 2048

    def predict_seconds(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ) -> float:
        dtype = np.dtype(dtype)
        network_k = 1 << max(0, (k - 1).bit_length())
        trace = build_trace(n, network_k, dtype.itemsize, self.flags, self.device)
        total = 0.0
        for kernel in trace.kernels:
            global_time = kernel.global_bytes / self.device.global_bandwidth
            shared_time = kernel.shared_bytes_weighted / self.device.shared_bandwidth
            total += max(global_time, shared_time)
        return total

    def kernel_breakdown(
        self, n: int, k: int, dtype: np.dtype = np.dtype(np.float32)
    ) -> list[tuple[str, float, float]]:
        """(name, T_g, T_k) per kernel — the Section 7.2 worked example."""
        dtype = np.dtype(dtype)
        network_k = 1 << max(0, (k - 1).bit_length())
        trace = build_trace(n, network_k, dtype.itemsize, self.flags, self.device)
        breakdown = []
        for kernel in trace.kernels:
            breakdown.append(
                (
                    kernel.name,
                    kernel.global_bytes / self.device.global_bandwidth,
                    kernel.shared_bytes_weighted / self.device.shared_bandwidth,
                )
            )
        return breakdown
