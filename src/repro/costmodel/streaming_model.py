"""Cost model for continuous top-k maintenance (incremental vs recompute).

A streaming subscription answers the same query every tick; the planner's
choice is *how*:

* **recompute** — run the exact one-shot kernel over the whole live
  window each tick: ``T_rec = T_bitonic(W, k)``.
* **incremental** — summarize only the tick's arriving chunk down to its
  top-k candidates with the same kernel, then merge the window's live
  per-chunk summaries: ``T_inc = T_bitonic(C, k) + T_merge(L*k + k)``
  where ``C`` is the chunk size and ``L = ceil(W / C)`` the number of
  live chunks.  Per-chunk summaries are exact (any window top-k row has
  fewer than k predecessors in its own chunk), so both modes produce
  bit-identical answers — the choice is purely a cost question.

The crossover is governed by *churn*: the fraction of the window
replaced per tick (``C / W`` for a chunk-aligned window).  At low churn
the incremental path touches ~``C + (W/C + 1) * k`` elements against
recompute's ``W`` — the classic ``W/C`` streaming speedup.  As churn
approaches 1 the chunk *is* the window and incremental degrades to
recompute plus merge overhead, so :meth:`StreamingModel.choose_mode`
switches back to recompute.  Kernel phases use the same
max(global, shared) bound as :class:`~repro.costmodel.bitonic_model.
BitonicModel` (Section 7.2), with peak bandwidths, so predictions
underestimate measured times by the same Figure 17 gap.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bitonic.kernels import build_trace
from repro.bitonic.optimizations import FULL, OptimizationFlags
from repro.costmodel.base import UNIFORM_FLOAT, CostModel, WorkloadProfile
from repro.errors import InvalidParameterError

#: Bytes per merged candidate: 4-byte rank value + 4-byte global row id
#: (the (key, id) candidate layout of Section 6.6).
CANDIDATE_BYTES = 8


class StreamingModel(CostModel):
    """Prices one tick of continuous top-k maintenance.

    ``predict_seconds(n, k)`` is the *incremental* per-tick cost with the
    window ``n`` and the model's configured ``chunk_rows`` — the shape
    every other model exposes, so the calibration loop and what-if
    tooling can treat it uniformly.  The streaming planner uses the
    explicit pair :meth:`incremental_tick_seconds` /
    :meth:`recompute_tick_seconds` and :meth:`choose_mode`.
    """

    algorithm = "streaming"

    def __init__(
        self,
        device=None,
        chunk_rows: int = 1 << 14,
        flags: OptimizationFlags = FULL,
    ):
        super().__init__(device)
        if chunk_rows <= 0:
            raise InvalidParameterError(
                f"chunk_rows must be positive, got {chunk_rows}"
            )
        self.chunk_rows = chunk_rows
        self.flags = flags

    def supports(self, n: int, k: int, dtype: np.dtype) -> bool:
        # Bound by the summarize kernel's network width, like BitonicModel.
        return 1 <= k <= 2048

    def predict_seconds(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ) -> float:
        return self.incremental_tick_seconds(n, self.chunk_rows, k, dtype)

    # -- the two maintenance modes --------------------------------------

    def _bitonic_seconds(self, n: int, k: int, dtype: np.dtype) -> float:
        network_k = 1 << max(0, (k - 1).bit_length())
        trace = build_trace(
            max(n, 1), network_k, np.dtype(dtype).itemsize,
            self.flags, self.device,
        )
        total = 0.0
        for kernel in trace.kernels:
            global_time = kernel.global_bytes / self.device.global_bandwidth
            shared_time = (
                kernel.shared_bytes_weighted / self.device.shared_bandwidth
            )
            total += max(global_time, shared_time)
        return total

    def _merge_seconds(self, candidates: int) -> float:
        # The tick merge reads every live candidate and writes back the
        # k winners; candidate counts are tiny, so it is bandwidth-bound
        # on the read side.
        merge_bytes = float(candidates + 1) * CANDIDATE_BYTES * 2.0
        return merge_bytes / self.device.global_bandwidth

    def live_chunks(self, window: int, chunk: int) -> int:
        """Summaries a chunk-aligned window of ``window`` rows holds."""
        self._validate(window, chunk)
        return max(1, math.ceil(window / chunk))

    def incremental_tick_seconds(
        self,
        window: int,
        chunk: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
    ) -> float:
        """One tick of summary maintenance: summarize chunk + merge."""
        self._validate(window, chunk)
        chunks = self.live_chunks(window, chunk)
        summarize = self._bitonic_seconds(chunk, k, dtype)
        merge = self._merge_seconds(chunks * k + k)
        return summarize + merge

    def recompute_tick_seconds(
        self,
        window: int,
        chunk: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
    ) -> float:
        """One tick of recompute: the one-shot kernel over the window."""
        self._validate(window, chunk)
        return self._bitonic_seconds(max(window, chunk), k, dtype)

    # -- the crossover policy -------------------------------------------

    def churn(self, window: int, chunk: int) -> float:
        """Fraction of the window replaced per tick."""
        self._validate(window, chunk)
        return min(1.0, chunk / max(window, chunk))

    def speedup(
        self,
        window: int,
        chunk: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
    ) -> float:
        """Predicted recompute-over-incremental per-tick ratio."""
        return self.recompute_tick_seconds(
            window, chunk, k, dtype
        ) / self.incremental_tick_seconds(window, chunk, k, dtype)

    def choose_mode(
        self,
        window: int,
        chunk: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
    ) -> str:
        """``"incremental"`` or ``"recompute"``, whichever prices cheaper.

        The churn crossover falls out of the prediction pair: high churn
        (chunk approaching the window) makes the incremental path pay
        recompute's summarize cost *plus* the merge, so recompute wins;
        everywhere below the crossover the ``window/chunk`` reuse wins.
        """
        incremental = self.incremental_tick_seconds(window, chunk, k, dtype)
        recompute = self.recompute_tick_seconds(window, chunk, k, dtype)
        return "incremental" if incremental < recompute else "recompute"

    def _validate(self, window: int, chunk: int) -> None:
        if window <= 0:
            raise InvalidParameterError(
                f"window must be positive, got {window}"
            )
        if chunk <= 0:
            raise InvalidParameterError(
                f"chunk must be positive, got {chunk}"
            )
