"""Cost model for the RadiK-style adaptive radix top-k.

Mirrors the pass schedule of :class:`repro.algorithms.radik.RadiKTopK`
analytically: digit widths come from :func:`~repro.algorithms.radik.plan_width`
over the *predicted* survivor counts, and the scatter decision from the
same buffer budget the kernel uses.  Survivor fractions are taken from
the workload profile's per-8-bit etas and interpolated per bit — a w-bit
pass over bits that an 8-bit pass would cut by eta cuts by
``eta ** (w / 8)`` (uniform order statistics are memoryless in the bit
position).

Pass i over ``materialized`` elements costs (bandwidth terms only, peak
B_G like every Section 7 model):

    T_hist    = (materialized * width_bytes + H_w) / B_G
    T_prefix  = 2 * H_w / B_G
    T_scatter = (read + written) * width_bytes / B_G   (deferred passes
                                                        pay nothing)

where ``H_w = 2^w * 4 * blocks`` is the per-block shared-histogram flush
— for adaptive widths this replaces the strawman's fixed per-thread
histogram term.  Deferral is the model's core asymmetry: while the
survivor set exceeds the buffer budget, a pass costs only its histogram
read, so adversarial distributions degrade to sort-like scan costs
without the strawman's full-size cluster writes.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import keys as keycodec
from repro.algorithms.radik import buffer_budget, histogram_blocks, plan_width
from repro.costmodel.base import UNIFORM_FLOAT, CostModel, WorkloadProfile


def eta_over_bits(
    fractions: tuple[float, ...], cursor: int, width: int
) -> float:
    """Survivor fraction of a ``width``-bit pass starting at bit ``cursor``.

    The profile's fractions are per 8-bit strawman pass; each overlapped
    8-bit segment contributes ``fraction ** (overlap / 8)``.
    """
    eta = 1.0
    start = cursor
    end = cursor + width
    while start < end:
        segment = start // 8
        fraction = (
            fractions[segment] if segment < len(fractions) else fractions[-1]
        )
        take = min(end, (segment + 1) * 8) - start
        eta *= fraction ** (take / 8.0)
        start += take
    return eta


class RadiKModel(CostModel):
    """Predicts RadiK runtime from the adaptive pass schedule."""

    algorithm = "radik"

    def __init__(self, device=None, num_threads: int | None = None):
        super().__init__(device)
        self.num_threads = num_threads or self.device.total_cores * 8

    def _simulate(
        self,
        n: int,
        k: int,
        dtype: np.dtype,
        profile: WorkloadProfile,
    ) -> tuple[float, int]:
        """(predicted seconds, predicted pass count) for one selection."""
        dtype = np.dtype(dtype)
        width_bytes = keycodec.key_bytes(dtype)
        bits = keycodec.key_bits(dtype)
        bandwidth = self.device.global_bandwidth
        fractions = profile.radix_survivor_fractions
        budget = buffer_budget(k)

        total = 0.0
        executed = 0
        live = float(n)
        materialized = float(n)
        buffered = False
        cursor = 0
        while live > k and cursor < bits:
            width = plan_width(live / k, bits - cursor)
            eta = eta_over_bits(fractions, cursor, width)
            survivors = live * eta
            executed += 1
            blocks = histogram_blocks(self.num_threads, materialized)
            histogram_bytes = (1 << width) * 4.0 * blocks
            total += (materialized * width_bytes + histogram_bytes) / bandwidth
            total += 2.0 * histogram_bytes / bandwidth
            if buffered:
                total += (live + survivors) * width_bytes / bandwidth
                materialized = survivors
            elif survivors <= budget:
                # The filter pass: one more full read of the input, one
                # buffer-sized write (survivors plus the emitted top
                # elements, bounded by k).
                total += (
                    (materialized + survivors + k) * width_bytes / bandwidth
                )
                buffered = True
                materialized = survivors
            # Deferred passes pay nothing beyond their histogram.
            cursor += width
            live = survivors
        final_elements = max(live, float(k))
        total += (final_elements + k) * width_bytes / bandwidth
        return total, executed

    def predict_seconds(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ) -> float:
        return self._simulate(n, k, dtype, profile)[0]

    def predict_passes(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ) -> int:
        """Pass count the model charges for (the adaptive schedule's depth)."""
        return self._simulate(n, k, dtype, profile)[1]
