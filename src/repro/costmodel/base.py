"""Cost-model interfaces (Section 7).

A cost model *predicts* the runtime of an algorithm from hardware
parameters and workload statistics, without running anything — the tool a
query planner needs to choose a top-k implementation (the paper's closing
argument).  Models intentionally use the *peak* hardware bandwidths, like
the paper's: both its models and ours therefore underestimate the measured
(simulated) times by the achievable-bandwidth gap, which Figure 17
quantifies.

Workload statistics that are data-dependent (radix survivor fractions,
heap insert rates) enter through :class:`WorkloadProfile`; presets cover
the paper's distributions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.gpu.device import DeviceSpec, get_device


@dataclass(frozen=True)
class WorkloadProfile:
    """Distribution-dependent statistics a cost model may need.

    * ``radix_survivor_fractions`` — eta_i per radix-select pass: fraction
      of candidates falling into the k-th element's bucket.
    * ``bucket_survivor_fractions`` — the analogue for bucket select.
    * ``heap_insert_rate`` — probability that a scanned element triggers a
      per-thread heap insert, as a function handle is overkill: we store
      the adversarial flag instead; the model derives the uniform rate from
      order statistics (k/i for the i-th element) and the sorted-ascending
      worst case (every element inserts).
    """

    name: str = "uniform-float"
    radix_survivor_fractions: tuple[float, ...] = (0.5, 1.0 / 128, 0.01, 0.01)
    bucket_survivor_fractions: tuple[float, ...] = (1.0 / 16, 1.0 / 16, 1.0 / 16)
    every_element_inserts: bool = False


#: Uniform U(0, 1) float32: half the values share the top exponent byte, so
#: the first radix pass only halves the data; the second pass (7 mantissa
#: bits) cuts by 128.
UNIFORM_FLOAT = WorkloadProfile(name="uniform-float")

#: Uniform uint32: every pass achieves the maximal 256x reduction.
UNIFORM_UINT = WorkloadProfile(
    name="uniform-uint",
    radix_survivor_fractions=(1.0 / 256, 1.0 / 256, 1.0 / 256, 1.0 / 256),
)

#: Sorted ascending floats: radix behaviour unchanged, but every element
#: updates a per-thread heap.
INCREASING_FLOAT = WorkloadProfile(
    name="increasing-float", every_element_inserts=True
)

#: The Section 6.4 adversarial distribution: each pass eliminates exactly
#: one element — a nonzero reduction, so the write-skip never triggers and
#: every pass pays a full read + write like a sort pass.
BUCKET_KILLER = WorkloadProfile(
    name="bucket-killer",
    radix_survivor_fractions=(0.999999, 0.999999, 0.999999, 0.999999),
    bucket_survivor_fractions=(0.999999, 0.999999),
)

PROFILES = {
    profile.name: profile
    for profile in (UNIFORM_FLOAT, UNIFORM_UINT, INCREASING_FLOAT, BUCKET_KILLER)
}


def get_profile(name: str) -> WorkloadProfile:
    """Look up a workload profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise InvalidParameterError(
            f"unknown workload profile {name!r}; available: {known}"
        ) from None


def _prediction_only(predict):
    """Wrap ``predict_seconds`` so building prediction traces never trips a
    fault-injection site: predictions are host-side math, not device work."""
    import functools

    from repro.gpu import faults

    @functools.wraps(predict)
    def wrapper(self, *args, **kwargs):
        with faults.suspended():
            return predict(self, *args, **kwargs)

    wrapper.__repro_prediction_only__ = True
    return wrapper


class CostModel(abc.ABC):
    """Predicts the runtime of one algorithm family."""

    #: Must match the algorithm registry name it models.
    algorithm: str = "abstract"

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        predict = cls.__dict__.get("predict_seconds")
        if predict is not None and not getattr(
            predict, "__repro_prediction_only__", False
        ):
            cls.predict_seconds = _prediction_only(predict)

    def __init__(self, device: DeviceSpec | None = None):
        self.device = device or get_device()

    @abc.abstractmethod
    def predict_seconds(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ) -> float:
        """Predicted runtime in seconds."""

    def predict_ms(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ) -> float:
        """Predicted runtime in milliseconds (convenience)."""
        return self.predict_seconds(n, k, np.dtype(dtype), profile) * 1e3

    def supports(self, n: int, k: int, dtype: np.dtype) -> bool:
        """Mirror of the algorithm's resource feasibility check."""
        return True
