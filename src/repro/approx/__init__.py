"""repro.approx — bucketed approximate top-k with a recall model.

The subsystem trades a quantified sliver of recall for wall-clock: the
input is split into ``b`` buckets, each bucket keeps its ``khat`` largest
elements with the exact register machinery, and the candidates merge
exactly — one streaming pass over the data instead of the exact bitonic
pipeline's multi-round reduction.  ``recall.expected_recall`` predicts the
loss analytically, ``recall.measured_recall`` verifies it empirically, and
``delegate`` adds the Dr. Top-k pre-filter that cuts merge traffic further.

See ``docs/approximate.md`` for the algorithm and derivation.
"""

from repro.approx.bench import (
    ApproxBenchReport,
    ApproxWorkload,
    check_baseline,
    run_approx_benchmark,
)
from repro.approx.bucketed import ApproxBucketTopK
from repro.approx.config import (
    DEFAULT_DELEGATE_GROUP,
    DEFAULT_OVERSAMPLE,
    ApproxConfig,
    default_config,
)
from repro.approx.degrade import DegradeChoice, clear_cache, degraded_config
from repro.approx.delegate import (
    exact_delegate_filter,
    group_delegates,
    group_members,
)
from repro.approx.recall import (
    delegate_expected_recall,
    expected_recall,
    measured_recall,
)

__all__ = [
    "ApproxBenchReport",
    "ApproxBucketTopK",
    "ApproxConfig",
    "ApproxWorkload",
    "check_baseline",
    "run_approx_benchmark",
    "DEFAULT_DELEGATE_GROUP",
    "DEFAULT_OVERSAMPLE",
    "DegradeChoice",
    "clear_cache",
    "default_config",
    "degraded_config",
    "delegate_expected_recall",
    "exact_delegate_filter",
    "expected_recall",
    "group_delegates",
    "group_members",
    "measured_recall",
]
