"""Dr. Top-k-style delegate pre-filter (Gaihre et al., SC 2021).

Split the input into groups of ``group`` consecutive elements and reduce
each group to its maximum — the group's *delegate*.  Any algorithm that
selects the top-k **groups by delegate** and then finishes on only those
groups' elements reads ``surviving_groups * group`` elements instead of n
in its selection phase — the global-memory-traffic cut the paper reports.

The *exact* filter here keeps every group whose delegate ties or beats
the k-th largest delegate.  That is provably lossless: a group containing
a top-k element has a delegate at least that element, hence at least the
k-th overall value; and because at most k groups contain top-k elements,
the k-th largest delegate cannot exceed the k-th overall value.  Ties are
kept inclusively, so duplicates at the boundary never drop a group.

The *approximate* variant (used by
:class:`repro.approx.bucketed.ApproxBucketTopK` when
``ApproxConfig.delegate_group`` is set) replaces the exact delegate
selection with the bucketed selection, trading a quantified recall loss
(:func:`repro.approx.recall.delegate_expected_recall`) for a single-pass
filter.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.keys import encode
from repro.errors import InvalidParameterError


def group_delegates(data: np.ndarray, group: int) -> np.ndarray:
    """Order-preserving unsigned codes of each group's maximum.

    Groups are runs of ``group`` consecutive elements (the coalesced
    layout); a short final group is padded with the minimum code.
    """
    if group < 1:
        raise InvalidParameterError(f"group must be at least 1, got {group}")
    codes = encode(np.asarray(data))
    num_groups = math.ceil(len(codes) / group)
    padded = np.zeros(num_groups * group, dtype=codes.dtype)
    padded[: len(codes)] = codes
    return padded.reshape(num_groups, group).max(axis=1)


def group_members(n: int, groups: np.ndarray, group: int) -> np.ndarray:
    """Original element indices belonging to the given group ids."""
    starts = groups.astype(np.int64) * group
    members = (starts[:, None] + np.arange(group, dtype=np.int64)).ravel()
    return members[members < n]


def exact_delegate_filter(
    data: np.ndarray, k: int, group: int
) -> tuple[np.ndarray, np.ndarray]:
    """Lossless pre-filter: (surviving group ids, their element indices).

    The surviving groups are guaranteed to contain every top-k element of
    ``data``; ties with the k-th delegate are kept inclusively.
    """
    data = np.asarray(data)
    n = len(data)
    if not 1 <= k <= n:
        raise InvalidParameterError(f"invalid filter: n = {n}, k = {k}")
    delegates = group_delegates(data, group)
    if len(delegates) <= k:
        survivors = np.arange(len(delegates), dtype=np.int64)
    else:
        threshold = np.partition(delegates, len(delegates) - k)[
            len(delegates) - k
        ]
        survivors = np.flatnonzero(delegates >= threshold).astype(np.int64)
    return survivors, group_members(n, survivors, group)
