"""Recall of bucketed approximate top-k: analytic estimate and measurement.

Derivation (documented in ``docs/approximate.md``)
--------------------------------------------------

Fix a bucket j of capacity ``c_j`` (the stripes differ by at most one
element).  Let ``X_j`` be the number of true top-k elements that land in
bucket j.  The per-bucket selection keeps the bucket's ``khat`` largest
elements, and every top-k element in the bucket outranks every non-top-k
element in it, so exactly ``min(X_j, khat)`` of them survive to the exact
merge.  Under exchangeable bucket assignment (a random permutation, or
the strided assignment on data whose order is unrelated to its values)
the top-k elements form a uniform random k-subset of the n positions, so

    X_j ~ Hypergeometric(n, c_j, k)

and the expected recall is

    E[R] = (1 / k) * sum_j E[min(X_j, khat)].

``E[min(X, h)]`` needs only the pmf below ``h``:
``E[min(X, h)] = sum_{x < h} x p(x) + h (1 - sum_{x < h} p(x))``, which
keeps the computation O(buckets_classes * khat) regardless of n and k.
The familiar ``Binomial(k, 1/b)`` model of the approximate top-k paper is
the n -> infinity limit of this hypergeometric.

Assumptions: exchangeability of the bucket assignment (guaranteed by
``ApproxConfig.seed``; holds for the strided default unless the input
order correlates with rank), and — for the delegate pre-filter — at most
one top-k element per delegate group (accurate while ``k * group << n``).

The *measured* recall compares an answer against the exact oracle by
value multiset, using the same order-preserving unsigned key encoding the
radix algorithms use, so duplicates at the k-th boundary count correctly
and NaN/Inf behave exactly as documented in ``tests/test_special_values``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.keys import encode
from repro.approx.config import ApproxConfig
from repro.errors import InvalidParameterError


def _log_comb(a: int, b: int) -> float:
    """log C(a, b) via lgamma; -inf outside the support."""
    if b < 0 or b > a:
        return -math.inf
    return (
        math.lgamma(a + 1) - math.lgamma(b + 1) - math.lgamma(a - b + 1)
    )


def _hyper_pmf_below(n: int, c: int, k: int, h: int) -> np.ndarray:
    """P(X = x) for x in [0, h) with X ~ Hypergeometric(n, c, k).

    Computed by an upward recurrence from the lowest feasible x, which
    avoids summing the (possibly enormous) upper tail.
    """
    pmf = np.zeros(h)
    x_min = max(0, k - (n - c))
    if x_min >= h:
        return pmf
    log_p = (
        _log_comb(c, x_min) + _log_comb(n - c, k - x_min) - _log_comb(n, k)
    )
    p = math.exp(log_p) if log_p > -math.inf else 0.0
    x = x_min
    while x < h:
        pmf[x] = p
        # p(x+1) / p(x) for the hypergeometric pmf.
        numerator = (c - x) * (k - x)
        denominator = (x + 1) * (n - c - k + x + 1)
        p = p * numerator / denominator if denominator > 0 else 0.0
        x += 1
    return pmf


def _expected_min(n: int, c: int, k: int, h: int) -> float:
    """E[min(X, h)] for X ~ Hypergeometric(n, c, k)."""
    if h <= 0:
        return 0.0
    if h >= min(c, k):
        # min(X, h) = X almost surely; E[X] is exact and cheap.
        return k * c / n
    pmf = _hyper_pmf_below(n, c, k, h)
    below = float(pmf.sum())
    return float((np.arange(h) * pmf).sum()) + h * max(0.0, 1.0 - below)


def expected_recall(n: int, k: int, config: ApproxConfig) -> float:
    """Analytic expected recall of the bucketed operator on (n, k).

    Exact under the exchangeability assumption above; returns exactly 1.0
    for every configuration that degenerates to the exact algorithm
    (one bucket, ``khat >= k``, or ``khat`` at least the bucket capacity —
    which covers k = n, where everything must be kept).
    """
    if n < 1 or k < 1 or k > n:
        raise InvalidParameterError(
            f"invalid recall configuration: n = {n}, k = {k}"
        )
    buckets = min(config.buckets, n)
    khat = config.khat(k)
    capacity_high = math.ceil(n / buckets)
    if buckets == 1 or khat >= k or khat >= capacity_high:
        return 1.0
    capacity_low = n // buckets
    high_count = n - capacity_low * buckets
    low_count = buckets - high_count
    total = 0.0
    if low_count:
        total += low_count * _expected_min(n, capacity_low, k, khat)
    if high_count:
        total += high_count * _expected_min(n, capacity_low + 1, k, khat)
    return min(1.0, total / k)


def delegate_expected_recall(
    n: int, k: int, config: ApproxConfig
) -> float:
    """Expected recall with the delegate pre-filter enabled.

    A top-k element survives iff its *group's delegate* survives the
    bucketed selection over the ``ceil(n / g)`` delegates.  The delegates
    of groups containing top-k elements are exactly the delegates ranking
    above every other delegate, so the group-level problem has the same
    structure with n' = number of groups and k' = number of top groups.
    Assuming at most one top-k element per group (k * g << n), k' = k and
    element recall equals group recall.
    """
    group = config.delegate_group
    if group <= 1:
        return expected_recall(n, k, config)
    num_groups = math.ceil(n / group)
    effective_k = min(k, num_groups)
    return expected_recall(num_groups, effective_k, config)


def measured_recall(
    approx_values: np.ndarray, reference_values: np.ndarray
) -> float:
    """Fraction of the exact top-k value multiset the answer recovered.

    Both arrays must share a dtype; comparison happens on the
    order-preserving unsigned codes, so duplicate boundary values are
    counted with multiplicity and special values (NaN above +Inf for the
    positive-NaN bit pattern) match the radix algorithms' documented
    ordering.
    """
    reference_values = np.asarray(reference_values)
    approx_values = np.asarray(approx_values)
    if len(reference_values) == 0:
        return 1.0
    if approx_values.dtype != reference_values.dtype:
        raise InvalidParameterError(
            "measured_recall compares same-dtype value arrays, got "
            f"{approx_values.dtype} vs {reference_values.dtype}"
        )
    approx_codes, approx_counts = np.unique(
        encode(approx_values), return_counts=True
    )
    exact_codes, exact_counts = np.unique(
        encode(reference_values), return_counts=True
    )
    _, approx_at, exact_at = np.intersect1d(
        approx_codes, exact_codes, return_indices=True
    )
    hits = np.minimum(approx_counts[approx_at], exact_counts[exact_at]).sum()
    return float(hits) / float(len(reference_values))
