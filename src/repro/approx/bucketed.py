"""Bucketed approximate top-k operator (the ``repro.approx`` tentpole).

Algorithm (Key et al., 2024, adapted to the paper's kernel vocabulary):

1. **Bucket scan** — one coalesced pass over the input; element i belongs
   to bucket ``i mod b`` (or to a seeded random bucket), and each bucket
   keeps its ``khat = ceil(k/b) * oversample`` largest elements in a
   register-resident buffer, exactly like the Appendix A per-thread list
   but with one *stripe group* per bucket.  This is the entire contact
   with the n elements: one global read of the data, one tiny candidate
   write — where the exact bitonic pipeline re-reads the shrinking data
   across its reducer rounds.
2. **Exact merge** — the ``b * khat`` candidates (with their row ids) run
   through the ordinary bitonic top-k network; the merge is exact, so any
   error comes only from a bucket holding more than ``khat`` true top-k
   elements (quantified by :mod:`repro.approx.recall`).

With ``delegate_group = g`` the scan instead reduces each run of g
consecutive elements to its delegate (Dr. Top-k) and buckets the
delegates; the merge then reads only the surviving groups' elements —
``b * khat * g`` instead of n — which is the pre-filter's global-traffic
cut, recorded in the trace's counters and notes.

Determinism: all selections are stable sorts on order-preserving codes
with ties broken toward lower row indices, and the only randomness is the
optional seeded bucket permutation — the same seed always yields the same
answer.
"""

from __future__ import annotations

import math

import numpy as np

from repro import observability as obs
from repro.algorithms.base import TopKAlgorithm, TopKResult, validate_topk_args
from repro.algorithms.keys import encode
from repro.approx.config import ApproxConfig, default_config
from repro.approx.delegate import group_delegates, group_members
from repro.approx.recall import delegate_expected_recall, expected_recall
from repro.bitonic.kernels import build_trace
from repro.bitonic.optimizations import FULL, OptimizationFlags
from repro.bitonic.topk import BitonicTopK
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec
from repro.gpu.occupancy import (
    BlockResources,
    occupancy,
    register_spill_fraction,
)

#: Registers the scan kernel needs beyond the khat buffer entries
#: (mirrors the Appendix A register variant).
_REGISTER_OVERHEAD = 24

#: Per-thread register budget before the buffer spills to local memory.
_REGISTER_BUDGET = 64

#: Row-id bytes carried alongside each candidate key in the merge.
_ROW_ID_BYTES = 4


def _network_k(k: int) -> int:
    return 1 << max(0, (k - 1).bit_length())


def _bucket_topk_codes(
    codes: np.ndarray, khat: int, buckets: int
) -> np.ndarray:
    """Positions (into ``codes``) of each bucket's top-khat elements.

    Bucket j holds elements ``j, j + b, j + 2b, ...`` — the strided,
    coalesced assignment.  Selection is a stable sort on complemented
    codes, so ties keep the earlier (lower-index) element, matching the
    exact algorithms' tie-breaking; padding always loses ties because it
    occupies the final rows.
    """
    n = len(codes)
    steps = math.ceil(n / buckets)
    pad = np.iinfo(codes.dtype).max
    inverted = np.full(steps * buckets, pad, dtype=codes.dtype)
    inverted[:n] = ~codes
    matrix = inverted.reshape(steps, buckets)
    keep = min(khat, steps)
    order = np.argsort(matrix, axis=0, kind="stable")[:keep]
    positions = (
        order * buckets + np.arange(buckets, dtype=np.int64)[None, :]
    ).ravel()
    return positions[positions < n]


def _estimate_inserts(
    model_n: int, buckets: int, khat: int, sorted_ascending: bool
) -> float:
    """Expected register-buffer inserts during the scan at model scale.

    Random arrival order: the i-th element of a bucket's stream inserts
    with probability ``min(1, khat / i)`` (the order-statistics argument
    of Section 4.1), giving the harmonic estimate below.  A sorted
    ascending stream is the worst case — every element inserts.
    """
    if sorted_ascending:
        return float(model_n)
    stream = max(1.0, model_n / buckets)
    return buckets * khat * (1.0 + math.log(max(stream / khat, 1.0)))


class ApproxBucketTopK(TopKAlgorithm):
    """Bucketed approximate top-k with optional delegate pre-filter."""

    name = "approx-bucket"

    #: The exact merge runs on the bitonic network, so it inherits the
    #: shared-memory bound of Section 4.3.
    max_k = BitonicTopK.max_k

    def __init__(
        self,
        device: DeviceSpec | None = None,
        config: ApproxConfig | None = None,
        flags: OptimizationFlags = FULL,
    ):
        super().__init__(device)
        self.config = config
        self.flags = flags

    def supports(self, n: int, k: int, dtype: np.dtype) -> bool:
        return 1 <= k <= self.max_k

    # -- execution --------------------------------------------------------

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        validate_topk_args(data, k)
        n = len(data)
        model = model_n or n
        # An ascending input is the register buffer's worst case (every
        # element inserts); detect it from the functional data so the trace
        # charges the penalty, exactly like the per-thread variants do.
        with np.errstate(invalid="ignore"):
            self._input_sorted = n > 1 and bool(np.all(data[1:] >= data[:-1]))
        config = self.config or default_config(n, k)
        buckets = min(config.buckets, n)
        khat = config.khat(k)
        delegate = config.delegate_group if config.delegate_group > 1 else 0
        if delegate:
            num_groups = math.ceil(n / delegate)
            degenerate = (
                buckets >= num_groups
                or buckets == 1
                or khat >= min(k, num_groups)
                or khat >= math.ceil(num_groups / min(buckets, num_groups))
            )
        else:
            degenerate = (
                buckets == 1 or khat >= k or khat >= math.ceil(n / buckets)
            )
        if degenerate:
            return self._run_exact(data, k, model_n)
        if delegate:
            return self._run_delegate(
                data, k, model, model_n, config, buckets, khat, delegate
            )
        return self._run_bucketed(
            data, k, model, model_n, config, buckets, khat
        )

    def _run_exact(
        self, data: np.ndarray, k: int, model_n: int | None
    ) -> TopKResult:
        """Degenerate configurations (one bucket, khat >= k or >= bucket
        capacity) select everything — run the exact algorithm outright.

        The inner run is observation-suspended (the hybrid-scheduler
        convention): its kernels belong to *this* algorithm's trace and
        are recorded once by the outer instrumentation wrapper.  Fault
        injection stays live — the launches are real device activity.
        """
        with obs.suspended():
            exact = BitonicTopK(self.device, self.flags).run(
                data, k, model_n=model_n
            )
        trace = exact.trace
        trace.notes["approx.expected_recall"] = 1.0
        trace.notes["approx.exact_degenerate"] = 1.0
        trace.notes["approx.global_bytes_saved"] = 0.0
        self._publish(1.0, 0.0)
        return self._result(
            exact.values, exact.indices, trace, k, len(data), model_n
        )

    def _run_bucketed(
        self,
        data: np.ndarray,
        k: int,
        model: int,
        model_n: int | None,
        config: ApproxConfig,
        buckets: int,
        khat: int,
    ) -> TopKResult:
        n = len(data)
        codes = encode(data)
        if config.seed is not None:
            perm = np.random.default_rng(config.seed).permutation(n)
            scan_codes = codes[perm]
        else:
            perm = None
            scan_codes = codes
        with obs.span(
            "phase:bucket-scan",
            category="phase",
            buckets=buckets,
            khat=khat,
            n=n,
        ) as phase:
            positions = _bucket_topk_codes(scan_codes, khat, buckets)
            candidates = perm[positions] if perm is not None else positions
            phase.set(candidates=len(candidates))
        values, indices = self._merge(data, codes, candidates, k)

        recall = expected_recall(model, k, config)
        trace, saved = self._bucketed_trace(
            model, k, data.dtype.itemsize, config, buckets, khat
        )
        self._annotate(trace, config, recall, saved, buckets, khat, k)
        self._publish(recall, saved)
        return self._result(values, indices, trace, k, n, model_n)

    def _run_delegate(
        self,
        data: np.ndarray,
        k: int,
        model: int,
        model_n: int | None,
        config: ApproxConfig,
        buckets: int,
        khat: int,
        delegate: int,
    ) -> TopKResult:
        n = len(data)
        codes = encode(data)
        delegates = group_delegates(data, delegate)
        effective_buckets = min(buckets, len(delegates))
        if config.seed is not None:
            perm = np.random.default_rng(config.seed).permutation(
                len(delegates)
            )
            scan_delegates = delegates[perm]
        else:
            perm = None
            scan_delegates = delegates
        with obs.span(
            "phase:delegate-scan",
            category="phase",
            groups=len(delegates),
            group_size=delegate,
            buckets=effective_buckets,
            khat=khat,
        ) as phase:
            positions = _bucket_topk_codes(
                scan_delegates, khat, effective_buckets
            )
            groups = perm[positions] if perm is not None else positions
            members = group_members(n, groups, delegate)
            phase.set(surviving_groups=len(groups), candidates=len(members))
        values, indices = self._merge(data, codes, members, k)

        recall = delegate_expected_recall(model, k, config)
        trace, saved = self._delegate_trace(
            model, k, data.dtype.itemsize, config, effective_buckets, khat,
            delegate,
        )
        self._annotate(trace, config, recall, saved, effective_buckets, khat, k)
        trace.notes["approx.delegate_groups_kept"] = float(len(groups))
        self._publish(recall, saved)
        return self._result(values, indices, trace, k, n, model_n)

    def _merge(
        self,
        data: np.ndarray,
        codes: np.ndarray,
        candidates: np.ndarray,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact top-k over the candidate set, ties to lower row index."""
        with obs.span(
            "phase:candidate-merge", category="phase", candidates=len(candidates)
        ):
            candidate_codes = codes[candidates]
            order = np.lexsort((candidates, ~candidate_codes))[:k]
            chosen = candidates[order]
        return data[chosen].copy(), chosen.astype(np.int64)

    # -- trace construction ----------------------------------------------

    def _scan_resources(self, khat: int, width: int) -> BlockResources:
        registers = khat * max(1, width // 4) + _REGISTER_OVERHEAD
        return BlockResources(
            threads=256,
            registers_per_thread=min(
                registers, self.device.registers_per_thread_limit
            ),
        )

    def _bucketed_trace(
        self,
        model: int,
        k: int,
        width: int,
        config: ApproxConfig,
        buckets: int,
        khat: int,
    ) -> tuple[ExecutionTrace, float]:
        trace = ExecutionTrace()
        scan = trace.launch("approx-bucket-scan")
        scan.add_global_read(float(model) * width)
        candidates = buckets * khat
        scan.add_global_write(float(candidates) * (width + _ROW_ID_BYTES))
        scan.compute_ops = float(model)
        inserts = _estimate_inserts(
            model, buckets, khat, self._sorted_penalty(config)
        )
        # Register-list semantics of Appendix A: every insert rescans the
        # khat-entry buffer for the whole warp.
        scan.divergent_iterations = inserts * khat
        registers = khat * max(1, width // 4) + _REGISTER_OVERHEAD
        spill = register_spill_fraction(registers, _REGISTER_BUDGET)
        if spill > 0.0:
            scan.add_global_read(inserts * spill * khat * width)
            scan.add_global_write(inserts * spill * width)
        scan.occupancy = occupancy(
            self.device, self._scan_resources(khat, width)
        )
        trace.notes["approx.scan_inserts"] = inserts

        trace.extend(
            build_trace(
                max(candidates, 1),
                _network_k(k),
                width + _ROW_ID_BYTES,
                self.flags,
                self.device,
            )
        )
        saved = self._exact_bytes(model, k, width) - trace.global_bytes
        return trace, saved

    def _delegate_trace(
        self,
        model: int,
        k: int,
        width: int,
        config: ApproxConfig,
        buckets: int,
        khat: int,
        delegate: int,
    ) -> tuple[ExecutionTrace, float]:
        trace = ExecutionTrace()
        scan = trace.launch("approx-delegate-scan")
        scan.add_global_read(float(model) * width)
        scan.add_global_write(float(buckets * khat) * _ROW_ID_BYTES)
        scan.compute_ops = float(model)
        model_groups = math.ceil(model / delegate)
        inserts = _estimate_inserts(
            model_groups, buckets, khat, self._sorted_penalty(config)
        )
        scan.divergent_iterations = inserts * khat
        scan.occupancy = occupancy(
            self.device, self._scan_resources(khat, width)
        )
        trace.notes["approx.scan_inserts"] = inserts

        merge_input = min(model, buckets * khat * delegate)
        trace.extend(
            build_trace(
                max(merge_input, 1),
                _network_k(k),
                width + _ROW_ID_BYTES,
                self.flags,
                self.device,
            )
        )
        saved = self._exact_bytes(model, k, width) - trace.global_bytes
        trace.notes["approx.merge_input"] = float(merge_input)
        return trace, saved

    def _exact_bytes(self, model: int, k: int, width: int) -> float:
        """Global traffic of the exact bitonic plan on the same shape —
        the baseline the traffic-saved counter is measured against."""
        return build_trace(
            model, _network_k(k), width, self.flags, self.device
        ).global_bytes

    def _sorted_penalty(self, config: ApproxConfig) -> bool:
        """Whether to charge the sorted-ascending worst-case insert rate.

        A seeded permutation destroys any adversarial arrival order, so
        the penalty only applies to the strided assignment.
        """
        if config.seed is not None:
            return False
        return self._input_sorted

    def _annotate(
        self,
        trace: ExecutionTrace,
        config: ApproxConfig,
        recall: float,
        saved: float,
        buckets: int,
        khat: int,
        k: int,
    ) -> None:
        trace.notes["approx.expected_recall"] = recall
        trace.notes["approx.buckets"] = float(buckets)
        trace.notes["approx.khat"] = float(khat)
        trace.notes["approx.candidates"] = float(buckets * khat)
        trace.notes["approx.oversample"] = float(config.oversample)
        trace.notes["approx.delegate_group"] = float(config.delegate_group)
        trace.notes["approx.global_bytes_saved"] = saved

    def _publish(self, recall: float, saved: float) -> None:
        registry = obs.active_metrics()
        if registry is not None:
            registry.counter("approx.runs").inc()
            registry.gauge("approx.expected_recall").set(recall)
            registry.gauge("approx.global_bytes_saved").set(saved)

    #: Set per-run in ``run`` before trace construction.
    _input_sorted: bool = False
