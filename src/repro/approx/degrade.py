"""Recall→configuration inverse lookup for SLO-driven degradation.

The SLO scheduler degrades a query by lowering its ``recall_target`` —
rung 1 of the serving layer's degradation ladder — and needs to know, at
scheduling time, (a) whether a genuinely approximate configuration exists
for the query's shape at the degraded target, and (b) what recall floor
that configuration *advertises* (the exact hypergeometric
:func:`~repro.approx.recall.expected_recall` of the chosen config, which
the bench later verifies against :func:`~repro.approx.recall.measured_recall`).

:func:`degraded_config` answers both by delegating to the cost model's
recall-constrained search (:func:`repro.costmodel.approx_model.choose_config`)
and memoizing the result: scheduling decisions happen once per dispatch
cycle, so the same (shape, target) pair must not re-pay the config sweep
every cycle.  The cache key is everything the search reads — the same
discipline as the serving plan cache.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.approx.config import ApproxConfig
from repro.costmodel.base import UNIFORM_FLOAT, WorkloadProfile
from repro.errors import InvalidParameterError
from repro.gpu.device import DeviceSpec, get_device


@dataclass(frozen=True)
class DegradeChoice:
    """One feasible degradation: the config and what it promises."""

    config: ApproxConfig
    #: Analytic expected recall of ``config`` on the query's shape — the
    #: floor the degraded answer advertises to its caller.
    expected_recall: float
    #: The cost model's predicted seconds for the approximate execution.
    predicted_seconds: float


_CACHE: dict[tuple, DegradeChoice | None] = {}
_CACHE_LOCK = threading.Lock()


def degraded_config(
    n: int,
    k: int,
    recall_target: float,
    dtype: np.dtype = np.dtype(np.float32),
    device: DeviceSpec | None = None,
    profile: WorkloadProfile = UNIFORM_FLOAT,
) -> DegradeChoice | None:
    """Cheapest genuinely-approximate configuration meeting the target.

    Returns None when no non-degenerate configuration meets
    ``recall_target`` on this shape — the scheduler then leaves the query
    exact (degrading its ``recall_target`` would change nothing, since
    the planner only picks the approximate operator when a feasible
    config exists *and* beats every exact algorithm).

    Memoized on ``(n, k, target, dtype, device, profile)``; safe to call
    from every dispatch cycle.
    """
    if n < 1 or k < 1 or k > n:
        raise InvalidParameterError(
            f"invalid degradation shape: n = {n}, k = {k}"
        )
    if not 0.0 < recall_target <= 1.0:
        raise InvalidParameterError(
            f"recall_target must be in (0, 1], got {recall_target}"
        )
    device = device or get_device()
    dtype = np.dtype(dtype)
    key = (n, k, recall_target, str(dtype), device.name, profile.name)
    with _CACHE_LOCK:
        if key in _CACHE:
            return _CACHE[key]
    # The search is pure (cost models never read payloads), so concurrent
    # misses computing it twice is wasteful but harmless.
    from repro.costmodel.approx_model import choose_config

    found = choose_config(n, k, recall_target, dtype, device, profile)
    choice = (
        DegradeChoice(
            config=found[0],
            expected_recall=found[2],
            predicted_seconds=found[1],
        )
        if found is not None
        else None
    )
    with _CACHE_LOCK:
        _CACHE[key] = choice
    return choice


def clear_cache() -> None:
    """Drop every memoized lookup (tests and device-profile changes)."""
    with _CACHE_LOCK:
        _CACHE.clear()
