"""Configuration of the bucketed approximate top-k operator.

The operator (Key et al., "Approximate Top-k for Increased Parallelism",
2024 — see PAPERS.md) splits the n inputs into ``buckets`` disjoint
stripes, selects the top-``khat`` of every stripe independently with the
exact machinery, and merges the ``buckets * khat`` candidates exactly.
With ``khat = ceil(k / buckets) * oversample`` the merge output misses a
true top-k element only when more than ``khat`` of them collide in one
bucket — the event :func:`repro.approx.recall.expected_recall` quantifies.

``delegate_group`` additionally enables the Dr. Top-k-style pre-filter
(Gaihre et al., 2021): the scan first reduces each group of ``g``
consecutive elements to its maximum (the *delegate*) and buckets the
delegates instead, so the exact merge only reads the elements of surviving
groups — an n-to-``buckets * khat * g`` cut of the merge's global traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import InvalidParameterError

#: Default oversampling factor m: keep m * ceil(k/b) per bucket.  Three
#: slots per expected top-k hit pushes the collision probability (and so
#: the recall loss) below 1e-6 for the default bucket counts.
DEFAULT_OVERSAMPLE = 3

#: Default delegate group size when the pre-filter is requested without an
#: explicit size (128 consecutive elements per delegate, the Dr. Top-k
#: sweet spot for coalesced re-reads).
DEFAULT_DELEGATE_GROUP = 128


@dataclass(frozen=True)
class ApproxConfig:
    """Tuning knobs of one approximate top-k execution.

    * ``buckets`` — number of disjoint stripes b the input is split into.
    * ``oversample`` — per-bucket oversampling factor m; each bucket keeps
      ``khat = ceil(k / b) * m`` candidates.
    * ``delegate_group`` — elements per delegate for the Dr. Top-k
      pre-filter; 0 disables the filter (the default).
    * ``seed`` — when set, elements are assigned to buckets by a seeded
      random permutation, which makes the recall model's exchangeability
      assumption hold *by construction* on any input order; when None the
      deterministic strided assignment (element i -> bucket i mod b) is
      used, which is free and equivalent for non-adversarial input orders.
    """

    buckets: int = 32
    oversample: int = DEFAULT_OVERSAMPLE
    delegate_group: int = 0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.buckets < 1:
            raise InvalidParameterError(
                f"buckets must be at least 1, got {self.buckets}"
            )
        if self.oversample < 1:
            raise InvalidParameterError(
                f"oversample must be at least 1, got {self.oversample}"
            )
        if self.delegate_group < 0:
            raise InvalidParameterError(
                f"delegate_group cannot be negative, got {self.delegate_group}"
            )

    def khat(self, k: int) -> int:
        """Candidates kept per bucket for a query of size k."""
        if k < 1:
            raise InvalidParameterError(f"k must be at least 1, got {k}")
        return math.ceil(k / self.buckets) * self.oversample

    def candidates(self, k: int) -> int:
        """Total merge input: ``buckets * khat``."""
        return self.buckets * self.khat(k)

    def key(self) -> tuple:
        """Hashable identity for plan-cache keys and batch grouping."""
        return (self.buckets, self.oversample, self.delegate_group, self.seed)


def default_config(n: int, k: int) -> ApproxConfig:
    """The planner's default configuration for an (n, k) shape.

    ``b = next_pow2(k / 8)`` keeps ``khat`` near ``8 * oversample = 24``
    slots per bucket — small enough to live in registers (no spill below
    the 64-register budget of Appendix A), large enough that the binomial
    collision tail is negligible (expected recall > 1 - 1e-6 at k = 256).
    """
    if n < 1 or k < 1 or k > n:
        raise InvalidParameterError(
            f"invalid approximate top-k configuration: n = {n}, k = {k}"
        )
    buckets = 1 << max(0, (max(1, k // 8) - 1).bit_length())
    return ApproxConfig(buckets=max(1, min(buckets, n)))
