"""The approximate top-k benchmark behind ``repro approx-bench``.

Sweeps a grid of ``(model n, k, buckets)`` points and, at every point,
runs the exact bitonic plan and the bucketed approximate operator on the
same functional payload, reporting:

* **simulated milliseconds** of both sides (the deterministic figure CI
  gates on; wall clock is never reported, let alone gated);
* the resulting **simulated speedup** (exact / approximate);
* the **analytic expected recall** of the configuration and the
  **measured recall** against the full-sort oracle.

The *headline point* — ``n = 2**24, k = 256`` with the planner's default
configuration — carries the paper-level claim: the report fails unless it
shows at least :data:`MIN_HEADLINE_SPEEDUP` simulated speedup with
measured recall at least :data:`MIN_HEADLINE_RECALL`.  CI additionally
gates every point's simulated times against the committed
``benchmarks/baselines/BENCH_approx.json`` via :func:`check_baseline`.

Functional arrays are capped at ``functional_cap`` elements (recall is
insensitive to n once n >> candidates, and the trace models the full
``model n`` regardless), so the sweep stays fast enough for CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import reference_topk
from repro.bitonic.topk import BitonicTopK
from repro.approx.bucketed import ApproxBucketTopK
from repro.approx.config import ApproxConfig, default_config
from repro.approx.recall import expected_recall, measured_recall
from repro.bench.common import BASELINE_TOLERANCE, drifted
from repro.errors import InvalidParameterError
from repro.gpu.device import DeviceSpec, get_device
from repro.gpu.timing import trace_time

#: JSON schema tag of a serialized report.
REPORT_FORMAT = "repro-approx-bench"
REPORT_VERSION = 1

#: Absolute slack when gating recalls against a baseline (recall is
#: deterministic per seed, but the slack keeps the gate robust to numpy
#: version differences in the generator stream).
RECALL_TOLERANCE = 0.005

#: The acceptance gate at the headline point (n = 2**24, k = 256, default
#: configuration): simulated speedup over the exact bitonic plan and the
#: measured-recall floor it must hold at the same time.
MIN_HEADLINE_SPEEDUP = 2.0
MIN_HEADLINE_RECALL = 0.99

#: ``buckets`` sentinel meaning "the planner's default configuration".
DEFAULT_BUCKETS = 0

HEADLINE_N = 1 << 24
HEADLINE_K = 256


@dataclass
class ApproxWorkload:
    """The sweep grid: every combination of ``ns`` x ``ks`` x ``buckets``.

    A ``buckets`` entry of :data:`DEFAULT_BUCKETS` (0) means "whatever
    :func:`~repro.approx.config.default_config` picks for the shape" — the
    configuration the planner would use, and the one the headline gate
    reads.  The headline point must be part of the grid.
    """

    ns: tuple = (1 << 20, HEADLINE_N)
    ks: tuple = (64, HEADLINE_K)
    buckets: tuple = (DEFAULT_BUCKETS, 16, 64)
    functional_cap: int = 1 << 18
    seed: int = 0

    def __post_init__(self) -> None:
        self.ns = tuple(int(n) for n in self.ns)
        self.ks = tuple(int(k) for k in self.ks)
        self.buckets = tuple(int(b) for b in self.buckets)
        if not self.ns or not self.ks or not self.buckets:
            raise InvalidParameterError(
                "the sweep needs at least one n, one k, and one bucket count"
            )
        if min(self.ns) < 1 or min(self.ks) < 1:
            raise InvalidParameterError(
                f"invalid sweep shape: ns = {self.ns}, ks = {self.ks}"
            )
        if min(self.buckets) < 0:
            raise InvalidParameterError(
                f"bucket counts cannot be negative, got {self.buckets}"
            )
        if self.functional_cap < max(self.ks):
            raise InvalidParameterError(
                f"functional_cap {self.functional_cap} is smaller than the "
                f"largest k {max(self.ks)}"
            )

    def points(self) -> list[tuple[int, int, int]]:
        """The grid in deterministic row-major order, invalid shapes
        (k > n) skipped."""
        return [
            (n, k, b)
            for n in self.ns
            for k in self.ks
            for b in self.buckets
            if k <= n
        ]

    def to_dict(self) -> dict:
        return {
            "ns": list(self.ns),
            "ks": list(self.ks),
            "buckets": list(self.buckets),
            "functional_cap": self.functional_cap,
            "seed": self.seed,
        }


@dataclass
class SweepPoint:
    """Both sides of one ``(model n, k, buckets)`` grid point."""

    model_n: int
    k: int
    #: The *requested* bucket count (0 = planner default) — the grid key.
    requested_buckets: int
    #: The resolved configuration actually run.
    buckets: int
    khat: int
    exact_ms: float
    approx_ms: float
    expected: float
    measured: float
    global_bytes_saved: float = 0.0

    @property
    def speedup(self) -> float:
        return self.exact_ms / self.approx_ms if self.approx_ms > 0 else float("inf")

    @property
    def is_headline(self) -> bool:
        return (
            self.model_n == HEADLINE_N
            and self.k == HEADLINE_K
            and self.requested_buckets == DEFAULT_BUCKETS
        )

    def to_dict(self) -> dict:
        return {
            "model_n": self.model_n,
            "k": self.k,
            "requested_buckets": self.requested_buckets,
            "buckets": self.buckets,
            "khat": self.khat,
            "exact_ms": self.exact_ms,
            "approx_ms": self.approx_ms,
            "speedup": self.speedup,
            "expected_recall": self.expected,
            "measured_recall": self.measured,
            "global_bytes_saved": self.global_bytes_saved,
        }


@dataclass
class ApproxBenchReport:
    """The sweep's results plus the headline acceptance verdict."""

    workload: ApproxWorkload
    device: str
    points: list = field(default_factory=list)

    @property
    def headline(self) -> SweepPoint | None:
        for point in self.points:
            if point.is_headline:
                return point
        return None

    @property
    def passed(self) -> bool:
        """The paper-level claim: >= 2x simulated speedup at recall >= 0.99
        on the headline shape."""
        head = self.headline
        return (
            head is not None
            and head.speedup >= MIN_HEADLINE_SPEEDUP
            and head.measured >= MIN_HEADLINE_RECALL
        )

    def to_dict(self) -> dict:
        head = self.headline
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "workload": self.workload.to_dict(),
            "device": self.device,
            "points": [point.to_dict() for point in self.points],
            "headline": head.to_dict() if head is not None else None,
            "gates": {
                "min_speedup": MIN_HEADLINE_SPEEDUP,
                "min_recall": MIN_HEADLINE_RECALL,
            },
            "passed": self.passed,
        }

    def render(self) -> str:
        lines = [
            f"device       : {self.device}",
            f"sweep        : ns = {list(self.workload.ns)}, "
            f"ks = {list(self.workload.ks)}, "
            f"buckets = {list(self.workload.buckets)} (0 = default), "
            f"seed = {self.workload.seed}",
            "",
            f"{'model n':>11} {'k':>5} {'b':>5} {'khat':>5} "
            f"{'exact ms':>9} {'approx ms':>10} {'speedup':>8} "
            f"{'E[recall]':>10} {'measured':>9}",
        ]
        for point in self.points:
            marker = " *" if point.is_headline else ""
            lines.append(
                f"{point.model_n:>11} {point.k:>5} {point.buckets:>5} "
                f"{point.khat:>5} {point.exact_ms:>9.4f} "
                f"{point.approx_ms:>10.4f} {point.speedup:>7.2f}x "
                f"{point.expected:>10.6f} {point.measured:>9.6f}{marker}"
            )
        head = self.headline
        lines.append("")
        if head is None:
            lines.append(
                "headline     : MISSING — the sweep does not include "
                f"n = {HEADLINE_N}, k = {HEADLINE_K} with default buckets"
            )
        else:
            verdict = "PASS" if self.passed else "FAIL"
            lines.append(
                f"headline (*) : {head.speedup:.2f}x simulated speedup at "
                f"measured recall {head.measured:.4f} "
                f"(gate: >= {MIN_HEADLINE_SPEEDUP:.1f}x and "
                f">= {MIN_HEADLINE_RECALL:.2f}) -> {verdict}"
            )
        return "\n".join(lines)


def _point_data(
    workload: ApproxWorkload, model_n: int, k: int, buckets: int
) -> np.ndarray:
    """The functional payload of one grid point.

    Seeded by the full point coordinates, so each point's recall is
    reproducible in isolation — rerunning a sub-grid reproduces the full
    sweep's numbers exactly.
    """
    rng = np.random.default_rng([workload.seed, model_n, k, buckets])
    functional_n = min(model_n, workload.functional_cap)
    return rng.random(functional_n, dtype=np.float32)


def _run_point(
    workload: ApproxWorkload,
    device: DeviceSpec,
    model_n: int,
    k: int,
    requested_buckets: int,
) -> SweepPoint:
    data = _point_data(workload, model_n, k, requested_buckets)
    config = (
        default_config(model_n, k)
        if requested_buckets == DEFAULT_BUCKETS
        else ApproxConfig(buckets=min(requested_buckets, model_n))
    )
    exact = BitonicTopK(device).run(data, k, model_n=model_n)
    approx = ApproxBucketTopK(device, config=config).run(data, k, model_n=model_n)
    oracle_values, _ = reference_topk(data, k)
    return SweepPoint(
        model_n=model_n,
        k=k,
        requested_buckets=requested_buckets,
        buckets=config.buckets,
        khat=config.khat(k),
        exact_ms=trace_time(exact.trace, device).total_ms,
        approx_ms=trace_time(approx.trace, device).total_ms,
        expected=expected_recall(model_n, k, config),
        measured=measured_recall(approx.values, oracle_values),
        global_bytes_saved=approx.trace.notes.get(
            "approx.global_bytes_saved", 0.0
        ),
    )


def run_approx_benchmark(
    workload: ApproxWorkload | None = None,
    device: DeviceSpec | None = None,
) -> ApproxBenchReport:
    """Run the full sweep and assemble the report."""
    workload = workload or ApproxWorkload()
    device = device or get_device()
    report = ApproxBenchReport(workload=workload, device=device.name)
    for model_n, k, buckets in workload.points():
        report.points.append(
            _run_point(workload, device, model_n, k, buckets)
        )
    return report


def check_baseline(report: ApproxBenchReport, baseline: dict) -> list[str]:
    """Regression-gate a report against a committed baseline.

    Returns the list of violations (empty = pass).  Only deterministic
    quantities are gated — simulated milliseconds per point (within
    :data:`BASELINE_TOLERANCE`) and recalls (within
    :data:`RECALL_TOLERANCE` of the baseline) — never wall clock.
    """
    if baseline.get("format") != REPORT_FORMAT:
        return [f"baseline is not a {REPORT_FORMAT} document"]
    if baseline.get("workload") != report.workload.to_dict():
        return [
            "baseline workload differs from the benchmarked sweep: "
            f"{baseline.get('workload')} vs {report.workload.to_dict()}"
        ]
    problems = []
    measured_points = {
        (p.model_n, p.k, p.requested_buckets): p for p in report.points
    }
    for expected in baseline.get("points", []):
        key = (
            expected["model_n"],
            expected["k"],
            expected["requested_buckets"],
        )
        point = measured_points.get(key)
        if point is None:
            problems.append(f"sweep is missing baseline point {key}")
            continue
        label = f"point (n={key[0]}, k={key[1]}, b={key[2]})"
        for name, measured_ms in (
            ("exact_ms", point.exact_ms),
            ("approx_ms", point.approx_ms),
        ):
            expected_ms = expected[name]
            if drifted(measured_ms, expected_ms):
                problems.append(
                    f"{label} {name} {measured_ms:.4f} deviates more than "
                    f"{BASELINE_TOLERANCE:.0%} from baseline {expected_ms:.4f}"
                )
        if point.measured < expected["measured_recall"] - RECALL_TOLERANCE:
            problems.append(
                f"{label} measured recall {point.measured:.6f} fell below "
                f"baseline {expected['measured_recall']:.6f}"
            )
    if baseline.get("passed") and not report.passed:
        problems.append(
            "headline gate regressed: baseline passed "
            f">= {MIN_HEADLINE_SPEEDUP:.1f}x speedup at recall "
            f">= {MIN_HEADLINE_RECALL:.2f}, this run does not"
        )
    return problems
