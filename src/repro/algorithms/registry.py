"""Algorithm registry: the five GPU top-k methods of the evaluation.

Maps the names used throughout the benchmarks and the public API to
algorithm factories.  The registry is extensible so downstream users can
plug their own implementations into the planner and bench harness.
"""

from __future__ import annotations

from typing import Callable

from repro.algorithms.base import TopKAlgorithm
from repro.algorithms.bucket_select import BucketSelectTopK
from repro.algorithms.per_thread import PerThreadTopK
from repro.algorithms.per_thread_registers import PerThreadRegisterTopK
from repro.algorithms.radix_select import RadixSelectTopK
from repro.algorithms.radix_sort import SortTopK
from repro.errors import InvalidParameterError
from repro.gpu.device import DeviceSpec

AlgorithmFactory = Callable[[DeviceSpec | None], TopKAlgorithm]


def _bitonic_factory(device: DeviceSpec | None) -> TopKAlgorithm:
    # Imported lazily to avoid a circular import at package load time.
    from repro.bitonic.topk import BitonicTopK

    return BitonicTopK(device)


def _bitonic_sort_factory(device: DeviceSpec | None) -> TopKAlgorithm:
    from repro.bitonic.sort import BitonicSortTopK

    return BitonicSortTopK(device)


def _approx_bucket_factory(device: DeviceSpec | None) -> TopKAlgorithm:
    # Default configuration; callers that planned a specific ApproxConfig
    # instantiate ApproxBucketTopK directly instead of via the registry.
    from repro.approx.bucketed import ApproxBucketTopK

    return ApproxBucketTopK(device)


_REGISTRY: dict[str, AlgorithmFactory] = {
    "sort": SortTopK,
    "per-thread": PerThreadTopK,
    "per-thread-registers": PerThreadRegisterTopK,
    "radix-select": RadixSelectTopK,
    "bucket-select": BucketSelectTopK,
    "bitonic": _bitonic_factory,
    "bitonic-sort": _bitonic_sort_factory,
    "approx-bucket": _approx_bucket_factory,
}

#: The five algorithms compared in Section 6, in the paper's order.
EVALUATED_ALGORITHMS = (
    "sort",
    "per-thread",
    "radix-select",
    "bucket-select",
    "bitonic",
)


def create(name: str, device: DeviceSpec | None = None) -> TopKAlgorithm:
    """Instantiate a registered algorithm by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise InvalidParameterError(
            f"unknown algorithm {name!r}; available: {known}"
        ) from None
    return factory(device)


def register(name: str, factory: AlgorithmFactory) -> None:
    """Register a custom algorithm (overwrites an existing name)."""
    _REGISTRY[name] = factory


def list_algorithms() -> list[str]:
    """Names of all registered algorithms."""
    return sorted(_REGISTRY)
