"""Algorithm registry: the five GPU top-k methods of the evaluation.

Maps the names used throughout the benchmarks and the public API to
algorithm factories.  The registry is extensible so downstream users can
plug their own implementations into the planner and bench harness.
"""

from __future__ import annotations

from typing import Callable

from repro.algorithms.base import TopKAlgorithm
from repro.algorithms.bucket_select import BucketSelectTopK
from repro.algorithms.per_thread import PerThreadTopK
from repro.algorithms.per_thread_registers import PerThreadRegisterTopK
from repro.algorithms.radix_select import RadixSelectTopK
from repro.algorithms.radix_sort import SortTopK
from repro.errors import InvalidParameterError
from repro.gpu.device import DeviceSpec

AlgorithmFactory = Callable[[DeviceSpec | None], TopKAlgorithm]


def _bitonic_factory(device: DeviceSpec | None) -> TopKAlgorithm:
    # Imported lazily to avoid a circular import at package load time.
    from repro.bitonic.topk import BitonicTopK

    return BitonicTopK(device)


def _bitonic_sort_factory(device: DeviceSpec | None) -> TopKAlgorithm:
    from repro.bitonic.sort import BitonicSortTopK

    return BitonicSortTopK(device)


def _approx_bucket_factory(device: DeviceSpec | None) -> TopKAlgorithm:
    # Default configuration; callers that planned a specific ApproxConfig
    # instantiate ApproxBucketTopK directly instead of via the registry.
    from repro.approx.bucketed import ApproxBucketTopK

    return ApproxBucketTopK(device)


def _radik_factory(device: DeviceSpec | None) -> TopKAlgorithm:
    # Imported lazily: radik reuses radix_select helpers and observability,
    # both of which import this module's neighbors at package load time.
    from repro.algorithms.radik import RadiKTopK

    return RadiKTopK(device)


def _sharded_factory(device: DeviceSpec | None) -> TopKAlgorithm:
    # Default shard count; callers that planned a specific Merge tree
    # resolve through create_for_node, which carries the partition count.
    from repro.sharding.executor import ShardedTopK

    return ShardedTopK(device)


_REGISTRY: dict[str, AlgorithmFactory] = {
    "sort": SortTopK,
    "per-thread": PerThreadTopK,
    "per-thread-registers": PerThreadRegisterTopK,
    "radix-select": RadixSelectTopK,
    "radik": _radik_factory,
    "bucket-select": BucketSelectTopK,
    "bitonic": _bitonic_factory,
    "bitonic-sort": _bitonic_sort_factory,
    "approx-bucket": _approx_bucket_factory,
    "sharded": _sharded_factory,
}

#: The five algorithms compared in Section 6, in the paper's order.
EVALUATED_ALGORITHMS = (
    "sort",
    "per-thread",
    "radix-select",
    "bucket-select",
    "bitonic",
)


def create(name: str, device: DeviceSpec | None = None) -> TopKAlgorithm:
    """Instantiate a registered algorithm by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise InvalidParameterError(
            f"unknown algorithm {name!r}; available: {known}"
        ) from None
    return factory(device)


def create_for_node(
    node, device: DeviceSpec | None = None, flags=None
) -> TopKAlgorithm:
    """Resolve a physical-plan operator node to a kernel instance.

    The registry's IR dispatch: :class:`~repro.plan.nodes.ApproxTopK`
    nodes carry their full bucket configuration and map to the bucketed
    operator; :class:`~repro.plan.nodes.Merge` nodes carry their partition
    count and per-shard kernel and map to the scatter-gather executor;
    :class:`~repro.plan.nodes.TopK` nodes map through the name registry,
    with the ``cpu-heap`` sentinel resolving to the hand-rolled CPU
    priority queue (the terminal fallback stage, which needs no working
    device).  ``flags`` are forwarded to kernels that take bitonic
    optimization flags.
    """
    from repro.plan.nodes import CPU_FALLBACK, ApproxTopK, Merge, TopK

    if isinstance(node, Merge):
        from repro.sharding.executor import ShardedTopK

        inner = None
        if node.inputs:
            inner = getattr(node.inputs[0], "algorithm", None)
        return ShardedTopK(
            device,
            shards=max(1, len(node.inputs)),
            inner=inner,
            flags=flags,
        )
    if isinstance(node, ApproxTopK):
        from repro.approx.bucketed import ApproxBucketTopK
        from repro.bitonic.optimizations import FULL

        return ApproxBucketTopK(
            device, config=node.config(), flags=flags if flags is not None else FULL
        )
    if not isinstance(node, TopK):
        raise InvalidParameterError(
            f"cannot bind a kernel to a {type(node).__name__} node; "
            f"only TopK, ApproxTopK, and Merge operators execute directly"
        )
    if node.algorithm == CPU_FALLBACK:
        from repro.cpu.pq_topk import HandPqTopK

        return HandPqTopK(device)
    if node.algorithm == "bitonic" and flags is not None:
        from repro.bitonic.topk import BitonicTopK

        return BitonicTopK(device, flags)
    return create(node.algorithm, device)


def register(name: str, factory: AlgorithmFactory) -> None:
    """Register a custom algorithm (overwrites an existing name)."""
    _REGISTRY[name] = factory


def list_algorithms() -> list[str]:
    """Names of all registered algorithms."""
    return sorted(_REGISTRY)
