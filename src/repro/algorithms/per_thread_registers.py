"""Register-based per-thread top-k (Appendix A).

Functionally identical to :class:`~repro.algorithms.per_thread.PerThreadTopK`
(the same lockstep engine produces the same decisions), but the private
top-k buffer lives in *registers* instead of shared memory.  GPUs cannot
index registers dynamically, so the buffer is maintained as an unordered
array scanned linearly on every insert (the Appendix A code keeps
``minIndex``/``minValue`` and rescans the buffer to find the new minimum).

Cost consequences, which produce the Figure 18 shapes:

* an insert costs ``k`` serialized iterations for the warp (linear rescan)
  instead of the heap's ``2 log2 k`` — updates are *more expensive in the
  list than in the heap*, so the gap to the shared-memory variant widens
  on the increasing distribution and vanishes on the decreasing one;
* the compiler only keeps the buffer in registers while it fits; beyond
  the per-thread register budget the spilled fraction lives in off-chip
  local memory, so every rescan streams it through global bandwidth — the
  sharp slope from k = 32 to k = 64;
* occupancy is limited by the register file: ``k`` live registers per
  thread cut resident warps well before shared memory would.
"""

from __future__ import annotations

import math

import numpy as np

from repro import observability as obs
from repro.algorithms.base import TopKAlgorithm, TopKResult, validate_topk_args
from repro.algorithms.per_thread import DEVICE_THREADS, _final_topk, lockstep_topk
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec
from repro.gpu.occupancy import register_spill_fraction

#: Registers the kernel needs beyond the k buffer entries.
_REGISTER_OVERHEAD = 24

#: Per-thread register budget the compiler targets before spilling.  Real
#: compilers cap kernels near 64-128 registers to preserve occupancy; 64
#: reproduces the paper's observed spill onset between k = 32 and k = 64.
_REGISTER_BUDGET = 64


class PerThreadRegisterTopK(TopKAlgorithm):
    """Appendix A: per-thread top-k with a register-resident buffer."""

    name = "per-thread-registers"

    def __init__(
        self, device: DeviceSpec | None = None, device_threads: int = DEVICE_THREADS
    ):
        super().__init__(device)
        self.device_threads = device_threads

    def supports(self, n: int, k: int, dtype: np.dtype) -> bool:
        # The buffer can always be *allocated* (it spills to local memory);
        # the failure mode is performance, not capacity.
        return True

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        validate_topk_args(data, k)
        n = len(data)
        model = model_n or n
        width = data.dtype.itemsize

        model_stream = max(k, math.ceil(model / self.device_threads))
        functional_threads = max(1, min(self.device_threads, round(n / model_stream)))
        with obs.span(
            "phase:register-scan",
            category="phase",
            threads=functional_threads,
            n=n,
            k=k,
        ) as phase:
            state, state_indices, stats = lockstep_topk(data, k, functional_threads)
            phase.set(inserts=stats.inserts)
        values, indices = _final_topk(state, state_indices, k)

        trace = ExecutionTrace()
        counters = trace.launch("per-thread-registers-scan")
        counters.add_global_read(float(model) * width)
        counters.add_global_write(float(self.device_threads * k) * width)

        thread_scale = self.device_threads / stats.threads
        model_inserts = stats.inserts * thread_scale
        model_events = stats.warp_insert_events * thread_scale
        # Linear rescan: k warp-iterations per insert event.
        counters.divergent_iterations = model_events * float(k)

        buffer_registers = k * max(1, width // 4) + _REGISTER_OVERHEAD
        spill = register_spill_fraction(buffer_registers, _REGISTER_BUDGET)
        if spill > 0.0:
            # The spilled slice of the buffer lives in local (off-chip)
            # memory and is re-streamed on every insert's rescan.
            counters.add_global_read(model_inserts * spill * k * width)
            counters.add_global_write(model_inserts * spill * width)
        # Register pressure limits resident warps.
        resident_threads = self.device.registers_per_sm / min(
            buffer_registers, self.device.registers_per_thread_limit
        )
        counters.occupancy = max(
            1.0 / 64.0, min(1.0, resident_threads / self.device.max_threads_per_sm)
        )
        trace.notes["inserts"] = model_inserts
        trace.notes["spill_fraction"] = spill

        reduce = trace.launch("per-thread-registers-reduce")
        reduce.add_global_read(float(self.device_threads * k) * width)
        reduce.add_global_write(float(k) * width)
        return self._result(values, indices, trace, k, n, model_n)
