"""Radix select adapted to top-k (Sections 2.3 and 4.2).

MSD radix selection with 8-bit digits: each pass histograms the current
candidates' digit, locates the bucket holding the k-th largest element via
a (descending) prefix sum, emits every element in *higher* buckets straight
to the result — the Section 4.2 improvement that removes the final
pass — and recurses into the matched bucket only.

Two further details from Section 4.2 are implemented:

* if a pass achieves no reduction (every candidate shares the digit — the
  bucket-killer situation), the clustering write is skipped and the pass
  only costs its histogram scan;
* after the last digit the surviving candidates all equal the k-th value;
  the result is padded with them up to k.

The per-pass survivor fraction (eta_i of the Section 7 cost model) is
data-dependent; the execution trace records the fractions *measured* on
the functional run, which is how the adversarial distribution experiments
(Figure 12b) reproduce.
"""

from __future__ import annotations

import numpy as np

from repro import observability as obs
from repro.algorithms import keys as keycodec
from repro.algorithms.base import TopKAlgorithm, TopKResult, validate_topk_args
from repro.algorithms.radix_sort import DIGIT_BITS
from repro.gpu.counters import ExecutionTrace

#: Histogram integers per thread in the paper's cost model (Section 7.1).
HISTOGRAM_INTS_PER_THREAD = 16


def canonical_code_order(codes: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Indices sorting by (code desc, global row asc).

    The canonical total order used across the system (``reference_topk``,
    ``sharding.merge_topk``): larger values first, lower global row on
    ties.  ``~code`` ascending is code descending for the unsigned key
    codes, with the row as the stable secondary key.
    """
    return np.lexsort((rows, ~codes))


def _descending_prefix_counts(histogram: np.ndarray) -> np.ndarray:
    """counts[d] -> number of elements with digit > d."""
    reversed_cumsum = np.cumsum(histogram[::-1])
    higher = np.zeros_like(histogram)
    higher[:-1] = reversed_cumsum[:-1][::-1]
    return higher


class RadixSelectTopK(TopKAlgorithm):
    """Top-k via MSD radix selection (GGKS-derived, revised per Section 4.2)."""

    name = "radix-select"

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        validate_topk_args(data, k)
        n = len(data)
        codes = keycodec.encode(data)
        candidates = codes
        candidate_rows = np.arange(n, dtype=np.int64)
        bits = keycodec.key_bits(data.dtype)

        result_codes: list[np.ndarray] = []
        result_rows: list[np.ndarray] = []
        remaining = k
        pass_fractions: list[tuple[float, float, bool]] = []

        with obs.span("phase:select-passes", category="phase", n=n, k=k) as phase:
            for shift in range(bits - DIGIT_BITS, -DIGIT_BITS, -DIGIT_BITS):
                digits = keycodec.digit(candidates, shift, DIGIT_BITS)
                histogram = np.bincount(digits, minlength=1 << DIGIT_BITS)
                higher_counts = _descending_prefix_counts(histogram)
                # The bucket holding the remaining-th largest element: the
                # largest digit d with count(digit >= d) >= remaining; for that
                # bucket count(digit > d) < remaining <= count(digit >= d).
                at_least_counts = higher_counts + histogram
                bucket = int(np.max(np.flatnonzero(at_least_counts >= remaining)))
                in_bucket = digits == bucket
                above = digits > bucket
                survivors = int(histogram[bucket])
                emitted = int(above.sum())
                no_reduction = survivors == len(candidates)
                pass_fractions.append(
                    (
                        survivors / len(candidates),
                        emitted / len(candidates),
                        no_reduction,
                    )
                )
                if emitted:
                    result_codes.append(candidates[above])
                    result_rows.append(candidate_rows[above])
                    remaining -= emitted
                if no_reduction:
                    # Skip the clustering write and reuse the input (4.2).
                    continue
                candidates = candidates[in_bucket]
                candidate_rows = candidate_rows[in_bucket]
                if remaining <= 0 or survivors <= remaining:
                    break
            phase.set(passes=len(pass_fractions))
            registry = obs.active_metrics()
            if registry is not None:
                for eta, emitted_fraction, _ in pass_fractions:
                    registry.histogram("radix_select.survivor_fraction").observe(eta)
                    registry.histogram("radix_select.emitted_fraction").observe(
                        emitted_fraction
                    )

        # Whatever candidates remain all tie at (or bound) the k-th value;
        # pad the result with them (Section 4.2's final step).
        if remaining > 0:
            order = canonical_code_order(candidates, candidate_rows)[:remaining]
            result_codes.append(candidates[order])
            result_rows.append(candidate_rows[order])

        all_codes = np.concatenate(result_codes)
        all_rows = np.concatenate(result_rows)
        order = canonical_code_order(all_codes, all_rows)[:k]
        values = keycodec.decode(all_codes[order], data.dtype)
        indices = all_rows[order]

        trace = self._build_trace(model_n or n, data.dtype, pass_fractions)
        return self._result(values, indices, trace, k, n, model_n)

    def _build_trace(
        self,
        model_n: int,
        dtype: np.dtype,
        pass_fractions: list[tuple[float, float, bool]],
    ) -> ExecutionTrace:
        """Per-pass traffic per the Section 7.1 cost model, measured etas."""
        trace = ExecutionTrace()
        width = keycodec.key_bytes(dtype)
        num_threads = self.device.total_cores * 8
        histogram_bytes = HISTOGRAM_INTS_PER_THREAD * 4.0 * num_threads
        live = float(model_n)
        for index, (eta, emitted_fraction, no_reduction) in enumerate(pass_fractions):
            histogram = trace.launch(f"select-histogram-{index}")
            histogram.add_global_read(live * width)
            histogram.add_global_write(histogram_bytes)
            prefix = trace.launch(f"select-prefix-{index}")
            prefix.add_global_read(histogram_bytes)
            prefix.add_global_write(histogram_bytes)
            if not no_reduction:
                scatter = trace.launch(f"select-scatter-{index}")
                scatter.add_global_read(live * width)
                scatter.add_global_write(live * (eta + emitted_fraction) * width)
                live *= eta
            trace.notes[f"eta_{index}"] = eta
            trace.notes[f"emitted_{index}"] = emitted_fraction
        trace.notes["passes"] = len(pass_fractions)
        return trace
