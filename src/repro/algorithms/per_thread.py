"""Per-thread top-k (Algorithm 1) and its shared engine.

Every GPU thread maintains a private min-heap of the k largest values it
has seen; thread ``t`` scans elements ``t, t + nt, t + 2 nt, ...`` (the
coalesced order), and a final reduction combines the per-thread heaps.

Functional engine
-----------------

Executing tens of thousands of Python heaps is infeasible, but the *insert
decisions* of a min-heap depend only on its current minimum, so the heap
contents can be carried as a ``(threads, k)`` state matrix updated one
lockstep time step at a time (all threads look at their next element
simultaneously, exactly like the SIMT hardware).  This yields, exactly:

* the top-k result (matrix minimum replacement is decision-equivalent to
  the real heap),
* the per-thread insert counts, and
* the *warp-level* insert events — a warp is stalled when any of its 32
  lanes inserts, which is the thread-divergence cost of Section 4.1.

Scale fidelity: insert rates depend on the per-thread *stream length*, so
the functional run uses as many threads as makes its streams the same
length the modeled device would see at ``model_n`` (Section "Scale
substitution" in :mod:`repro.algorithms.base`).

Cost model (Section 4.1)
------------------------

One coalesced global read pass; per-element shared-memory compare against
the heap root; per warp-insert event a serialized heap update of
``~2 log2 k`` iterations for the whole warp; occupancy derated by the
``k * block_threads * width`` bytes of shared memory per block (the
algorithm *fails* when a minimum-size 32-thread block exceeds 48 KiB —
k > 384 for 4-byte keys, k > 192 for 8-byte keys, covering the paper's
observed failures at k >= 512 and k >= 256 respectively).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.algorithms.base import TopKAlgorithm, TopKResult, validate_topk_args
from repro.errors import ResourceExhaustedError
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec
from repro.gpu.occupancy import BlockResources, occupancy

#: Grid size the paper-style implementation launches (fixed, sized to keep
#: every SM busy independent of n).
DEVICE_THREADS = 16384


@dataclass
class LockstepStats:
    """Exact behavioural counts from the lockstep functional run."""

    threads: int
    stream_length: int
    inserts: int
    warp_insert_events: int
    #: Lockstep time steps executed (same for every thread).
    steps: int


def lockstep_topk(
    data: np.ndarray, k: int, num_threads: int, warp_size: int = 32
) -> tuple[np.ndarray, np.ndarray, LockstepStats]:
    """Run the per-thread top-k engine.

    Returns (state values, state indices) of shape (num_threads, k) — the
    per-thread heaps after the scan — plus the behavioural statistics.
    Unfilled heap slots hold the dtype minimum with index -1.
    """
    n = len(data)
    num_threads = max(1, min(num_threads, n))
    steps = math.ceil(n / num_threads)
    if data.dtype.kind == "f":
        sentinel = -np.inf
    else:
        sentinel = np.iinfo(data.dtype).min
    padded = np.full(steps * num_threads, sentinel, dtype=data.dtype)
    padded[:n] = data
    matrix = padded.reshape(steps, num_threads)
    index_matrix = np.full(steps * num_threads, -1, dtype=np.int64)
    index_matrix[:n] = np.arange(n)
    index_matrix = index_matrix.reshape(steps, num_threads)

    heap_depth = min(k, steps)
    state = matrix[:heap_depth].T.copy()
    state_indices = index_matrix[:heap_depth].T.copy()
    if heap_depth < k:
        filler = np.full((num_threads, k - heap_depth), sentinel, dtype=data.dtype)
        state = np.concatenate([state, filler], axis=1)
        filler_idx = np.full((num_threads, k - heap_depth), -1, dtype=np.int64)
        state_indices = np.concatenate([state_indices, filler_idx], axis=1)

    inserts = int(num_threads * heap_depth)
    warp_events = 0
    num_warps = math.ceil(num_threads / warp_size)
    for step in range(heap_depth, steps):
        incoming = matrix[step]
        minima = state.min(axis=1)
        mask = incoming > minima
        if not mask.any():
            continue
        rows = np.flatnonzero(mask)
        slots = state[rows].argmin(axis=1)
        state[rows, slots] = incoming[rows]
        state_indices[rows, slots] = index_matrix[step][rows]
        inserts += len(rows)
        # A warp serializes when any of its lanes inserts.
        lane_warps = rows // warp_size
        warp_events += len(np.unique(lane_warps))
    # Warm-up inserts also stall warps (every warp inserts on each of the
    # first heap_depth steps).
    warp_events += num_warps * heap_depth
    stats = LockstepStats(
        threads=num_threads,
        stream_length=steps,
        inserts=inserts,
        warp_insert_events=warp_events,
        steps=steps,
    )
    return state, state_indices, stats


def _final_topk(
    state: np.ndarray, state_indices: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Global reduction over the per-thread heaps."""
    flat = state.reshape(-1)
    flat_indices = state_indices.reshape(-1)
    valid = flat_indices >= 0
    flat = flat[valid]
    flat_indices = flat_indices[valid]
    order = np.argsort(flat, kind="stable")[::-1][:k]
    return flat[order].copy(), flat_indices[order].copy()


class PerThreadTopK(TopKAlgorithm):
    """Per-thread heap top-k (Algorithm 1, shared-memory heaps)."""

    name = "per-thread"

    def __init__(
        self, device: DeviceSpec | None = None, device_threads: int = DEVICE_THREADS
    ):
        super().__init__(device)
        self.device_threads = device_threads

    def _block_resources(self, k: int, width: int) -> BlockResources:
        """Largest block (by occupancy) that fits k keys per thread."""
        best: BlockResources | None = None
        best_occupancy = 0.0
        for threads in (256, 128, 64, 32):
            shared = k * threads * width
            if shared > self.device.shared_memory_per_block:
                continue
            resources = BlockResources(
                threads=threads, shared_memory_bytes=shared, registers_per_thread=40
            )
            value = occupancy(self.device, resources)
            if value > best_occupancy:
                best, best_occupancy = resources, value
        if best is None:
            raise ResourceExhaustedError(
                f"per-thread top-k needs {k * 32 * width} bytes of shared memory "
                f"per minimum-size block, exceeding the "
                f"{self.device.shared_memory_per_block}-byte limit (Section 4.1)"
            )
        return best

    def supports(self, n: int, k: int, dtype: np.dtype) -> bool:
        width = np.dtype(dtype).itemsize
        return k * 32 * width <= self.device.shared_memory_per_block

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        validate_topk_args(data, k)
        n = len(data)
        model = model_n or n
        width = data.dtype.itemsize
        resources = self._block_resources(k, width)

        # Match functional stream length to the modeled one so insert rates
        # are measured at the right scale.
        model_stream = max(k, math.ceil(model / self.device_threads))
        functional_threads = max(1, min(self.device_threads, round(n / model_stream)))
        with obs.span(
            "phase:lockstep-scan",
            category="phase",
            threads=functional_threads,
            n=n,
            k=k,
        ) as phase:
            state, state_indices, stats = lockstep_topk(data, k, functional_threads)
            phase.set(
                inserts=stats.inserts, warp_insert_events=stats.warp_insert_events
            )
            registry = obs.active_metrics()
            if registry is not None:
                registry.counter("per_thread.inserts").inc(stats.inserts)
                registry.counter("per_thread.warp_insert_events").inc(
                    stats.warp_insert_events
                )
        values, indices = _final_topk(state, state_indices, k)

        trace = self._build_trace(model, k, width, resources, stats)
        return self._result(values, indices, trace, k, n, model_n)

    def _build_trace(
        self,
        model_n: int,
        k: int,
        width: int,
        resources: BlockResources,
        stats: LockstepStats,
    ) -> ExecutionTrace:
        trace = ExecutionTrace()
        counters = trace.launch("per-thread-scan")
        counters.occupancy = occupancy(self.device, resources)
        counters.add_global_read(float(model_n) * width)
        counters.add_global_write(float(self.device_threads * k) * width)
        # Every element: shared read of the heap root for the comparison.
        counters.add_shared(float(model_n) * width)
        # Scale measured insert behaviour from functional to model threads.
        thread_scale = self.device_threads / stats.threads
        model_inserts = stats.inserts * thread_scale
        model_events = stats.warp_insert_events * thread_scale
        update_depth = 2.0 * max(1.0, math.log2(max(k, 2)))
        counters.add_shared(model_inserts * update_depth * 2.0 * width)
        counters.divergent_iterations = model_events * update_depth
        trace.notes["inserts"] = model_inserts
        trace.notes["warp_insert_events"] = model_events

        reduce = trace.launch("per-thread-reduce")
        candidates = float(self.device_threads * k) * width
        reduce.add_global_read(candidates)
        reduce.add_global_write(float(k) * width)
        return trace
