"""Bucket select adapted to top-k (Sections 2.3 and 4.2).

Where radix select partitions by digit bits, bucket select partitions the
*value range*: an explicit first pass finds min and max, then each
refinement pass splits the live range into 16 equal-width buckets, counts
elements per bucket (with atomic increments — the source of its overhead
relative to radix select), locates the bucket holding the k-th largest,
streams higher buckets straight to the result, and recurses into the
matched bucket.

Special cases from the paper:

* k = 1 terminates right after the min/max pass (the fast point at k = 1
  in Figure 11a);
* when a pass achieves no reduction (all candidates equal, or the matched
  bucket holds everything — the bucket-killer regime), the refinement
  cannot make progress and the remaining candidates are resolved by
  sorting them, costing the extra passes Figure 12b shows.
"""

from __future__ import annotations

import numpy as np

from repro import observability as obs
from repro.algorithms.base import TopKAlgorithm, TopKResult, validate_topk_args
from repro.gpu.counters import ExecutionTrace

#: Buckets per refinement pass (Section 4.2: "divides the data into 16
#: buckets at a time").
NUM_BUCKETS = 16

#: Safety bound on refinement passes; float32 has ~2^32 distinct values so
#: log_16 (2^32) = 8 passes suffice for distinguishable keys.
MAX_PASSES = 64


class BucketSelectTopK(TopKAlgorithm):
    """Top-k via min-max bucket refinement."""

    name = "bucket-select"

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        validate_topk_args(data, k)
        n = len(data)
        work = data.astype(np.float64)
        if data.dtype.kind == "f":
            # Clamp infinities to finite sentinels so the equi-width bucket
            # edges stay finite; any float32 magnitude is far below 1e300,
            # so the relative order is untouched (result values are gathered
            # from the original data).
            work = np.nan_to_num(work, nan=np.nan, posinf=1e300, neginf=-1e300)
        rows = np.arange(n, dtype=np.int64)

        low = float(work.min())
        high = float(work.max())
        pass_log: list[dict[str, float]] = []

        if k == 1:
            # The min-max pass already yields the answer (Section 6.2).
            index = int(np.argmax(work))
            trace = self._build_trace(model_n or n, data.dtype, pass_log, k)
            values = data[index : index + 1].copy()
            return self._result(values, np.array([index]), trace, k, n, model_n)

        result_rows: list[np.ndarray] = []
        remaining = k
        candidates = work
        candidate_rows = rows
        with obs.span(
            "phase:bucket-refinement", category="phase", n=n, k=k
        ) as phase:
            for _ in range(MAX_PASSES):
                if remaining <= 0 or len(candidates) <= remaining or low == high:
                    break
                if float(candidates.min()) == float(candidates.max()):
                    # All candidates tie (the bucket-killer tail): no amount
                    # of range refinement separates them; resolve by padding
                    # below.
                    break
                edges = np.linspace(low, high, NUM_BUCKETS + 1)
                # Bucket index in [0, NUM_BUCKETS): highest holds the max.
                buckets = np.clip(
                    np.searchsorted(edges, candidates, side="right") - 1,
                    0,
                    NUM_BUCKETS - 1,
                )
                counts = np.bincount(buckets, minlength=NUM_BUCKETS)
                cumulative_from_top = np.cumsum(counts[::-1])[::-1]
                matched = int(
                    np.max(np.flatnonzero(cumulative_from_top >= remaining))
                )
                above = buckets > matched
                in_bucket = buckets == matched
                emitted = int(above.sum())
                survivors = int(counts[matched])
                pass_log.append(
                    {
                        "eta": survivors / len(candidates),
                        "emitted": emitted / len(candidates),
                        "atomics": float(len(candidates)),
                    }
                )
                if emitted:
                    result_rows.append(candidate_rows[above])
                    remaining -= emitted
                if survivors == len(candidates):
                    # No reduction possible within this range: the candidates
                    # are concentrated in one bucket; narrow the range and,
                    # if the range cannot narrow (all equal), stop.
                    new_low, new_high = edges[matched], edges[matched + 1]
                    if (new_low, new_high) == (low, high):
                        break
                    low, high = new_low, new_high
                    continue
                candidates = candidates[in_bucket]
                candidate_rows = candidate_rows[in_bucket]
                low, high = edges[matched], edges[matched + 1]
            phase.set(passes=len(pass_log))
            registry = obs.active_metrics()
            if registry is not None:
                for entry in pass_log:
                    registry.histogram("bucket_select.survivor_fraction").observe(
                        entry["eta"]
                    )

        if remaining > 0:
            order = np.argsort(candidates, kind="stable")[::-1][:remaining]
            result_rows.append(candidate_rows[order])

        indices = np.concatenate(result_rows)
        order = np.argsort(data[indices], kind="stable")[::-1][:k]
        indices = indices[order]
        values = data[indices].copy()
        trace = self._build_trace(model_n or n, data.dtype, pass_log, k)
        return self._result(values, indices, trace, k, n, model_n)

    def _build_trace(
        self,
        model_n: int,
        dtype: np.dtype,
        pass_log: list[dict[str, float]],
        k: int,
    ) -> ExecutionTrace:
        trace = ExecutionTrace()
        width = dtype.itemsize
        minmax = trace.launch("bucket-minmax")
        minmax.add_global_read(float(model_n) * width)
        live = float(model_n)
        for index, entry in enumerate(pass_log):
            count = trace.launch(f"bucket-count-{index}")
            count.add_global_read(live * width)
            count.atomic_ops = live
            surviving = entry["eta"] + entry["emitted"]
            if surviving < 0.5:
                scatter = trace.launch(f"bucket-scatter-{index}")
                scatter.add_global_read(live * width)
                scatter.add_global_write(live * surviving * width)
                live *= entry["eta"]
            # Otherwise the pass barely reduced the data: keep the input in
            # place and only narrow the value range (the write-skip trick of
            # Section 4.2), so the next pass rescans the same candidates.
            trace.notes[f"eta_{index}"] = entry["eta"]
        trace.notes["passes"] = len(pass_log)
        return trace
