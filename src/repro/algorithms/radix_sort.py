"""LSD radix sort with 8-bit digits — the Sort baseline's engine.

The paper's Sort-and-Choose baseline uses the fastest GPU sort available,
an 8-bit-digit radix sort (Section 2.2).  One pass per digit performs:

1. histogram of the current digit (one sequential scan),
2. exclusive prefix sum over the counts to obtain bucket offsets,
3. stable scatter of the keys into their buckets.

Counter accounting per pass (matching the sort cost model): read all keys
for the histogram, read + write all keys for the scatter, plus the small
histogram/prefix-sum traffic.  32-bit keys take 4 passes, 64-bit keys 8 —
the paper's explanation for the doubled Sort cost on doubles (Fig. 11c).

Implementation note: the histogram and prefix sum are computed explicitly;
the stable scatter permutation within equal digits is obtained via numpy's
stable integer sort over the digit array (itself a counting sort), then
validated against the explicit offsets.  Payload columns are permuted
alongside the keys, which is how the key+value experiments run.
"""

from __future__ import annotations

import numpy as np

from repro import observability as obs
from repro.algorithms import keys as keycodec
from repro.algorithms.base import TopKAlgorithm, TopKResult, validate_topk_args
from repro.gpu.counters import ExecutionTrace

#: Digit width used throughout (Section 4.2 revised the GGKS code to 8 bits).
DIGIT_BITS = 8
RADIX = 1 << DIGIT_BITS


def exclusive_prefix_sum(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum — bucket start offsets from bucket counts."""
    offsets = np.zeros_like(counts)
    np.cumsum(counts[:-1], out=offsets[1:])
    return offsets


def radix_sort_pass(
    codes: np.ndarray, shift: int, payload: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
    """One stable LSD pass on the digit at ``shift``.

    Returns (sorted codes, permuted payload, histogram).
    """
    digits = keycodec.digit(codes, shift, DIGIT_BITS)
    histogram = np.bincount(digits, minlength=RADIX)
    # The scatter destination for element i is offsets[digit[i]] plus its
    # stable rank among equal digits; numpy's stable argsort over the digit
    # array realizes exactly that permutation.
    permutation = np.argsort(digits, kind="stable")
    sorted_codes = codes[permutation]
    sorted_payload = payload[permutation] if payload is not None else None
    return sorted_codes, sorted_payload, histogram


def radix_sort(
    values: np.ndarray, payload: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray | None]:
    """Full ascending LSD radix sort of ``values`` (optionally with payload)."""
    codes = keycodec.encode(values)
    bits = keycodec.key_bits(values.dtype)
    if payload is None:
        payload = np.arange(len(values), dtype=np.int64)
    for shift in range(0, bits, DIGIT_BITS):
        codes, payload, _ = radix_sort_pass(codes, shift, payload)
    return keycodec.decode(codes, values.dtype), payload


class SortTopK(TopKAlgorithm):
    """Sort-and-Choose: radix sort everything, take the first k (Section 3).

    Its cost is independent of both k and the data distribution — the flat
    line of Figures 11 and 12 — because every pass reads and rewrites the
    entire input regardless.
    """

    name = "sort"

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        validate_topk_args(data, k)
        n = len(data)
        model = model_n or n
        with obs.span(
            "phase:radix-sort",
            category="phase",
            n=n,
            passes=keycodec.key_bits(data.dtype) // DIGIT_BITS,
        ):
            sorted_values, permutation = radix_sort(data)
        values = sorted_values[::-1][:k].copy()
        indices = permutation[::-1][:k].copy()

        trace = ExecutionTrace()
        width = keycodec.key_bytes(data.dtype)
        data_bytes = float(model) * width
        num_threads = self.device.total_cores * 8
        histogram_bytes = RADIX * 4.0 * num_threads
        passes = keycodec.key_bits(data.dtype) // DIGIT_BITS
        for index in range(passes):
            histogram = trace.launch(f"sort-histogram-{index}")
            histogram.add_global_read(data_bytes)
            histogram.add_global_write(histogram_bytes)
            prefix = trace.launch(f"sort-prefix-{index}")
            prefix.add_global_read(histogram_bytes)
            prefix.add_global_write(histogram_bytes)
            scatter = trace.launch(f"sort-scatter-{index}")
            scatter.add_global_read(data_bytes)
            scatter.add_global_write(data_bytes)
        trace.notes["passes"] = passes
        return self._result(values, indices, trace, k, n, model_n)
