"""The top-k algorithms evaluated by the paper (Section 3 / Section 6).

Five GPU methods — Sort-and-Choose, per-thread heaps (plus the Appendix A
register variant), radix select, bucket select, and bitonic top-k (in
:mod:`repro.bitonic`) — behind a common :class:`TopKAlgorithm` interface.
"""

from repro.algorithms.base import (
    SUPPORTED_DTYPES,
    TopKAlgorithm,
    TopKResult,
    reference_topk,
    validate_topk_args,
)
from repro.algorithms.bucket_select import BucketSelectTopK
from repro.algorithms.per_thread import PerThreadTopK, lockstep_topk
from repro.algorithms.per_thread_registers import PerThreadRegisterTopK
from repro.algorithms.radix_select import RadixSelectTopK
from repro.algorithms.radix_sort import SortTopK, radix_sort
from repro.algorithms.registry import (
    EVALUATED_ALGORITHMS,
    create,
    list_algorithms,
    register,
)

__all__ = [
    "SUPPORTED_DTYPES",
    "TopKAlgorithm",
    "TopKResult",
    "reference_topk",
    "validate_topk_args",
    "BucketSelectTopK",
    "PerThreadTopK",
    "lockstep_topk",
    "PerThreadRegisterTopK",
    "RadixSelectTopK",
    "SortTopK",
    "radix_sort",
    "EVALUATED_ALGORITHMS",
    "create",
    "list_algorithms",
    "register",
]
