"""RadiK-style radix top-k: adaptive passes, buffered writes, batching.

The paper's radix select (:mod:`repro.algorithms.radix_select`) is the
2018 strawman: fixed 8-bit digits and a full cluster write on every
reducing pass.  RadiK (PAPERS.md: "RadiK: Scalable Radix Top-K Selection
on GPUs") restructures the kernel around three ideas, reproduced here on
the simulator:

* **Adaptive per-pass digit width.**  The first pass sizes its digit from
  the surplus factor ``n / k`` (there is no point histogramming 8 bits
  when 4 would already isolate the k-th bucket); every later pass sizes
  its digit from the *measured* survivor count of the previous histogram.
  Widths are clamped to [:data:`MIN_DIGIT_BITS`, :data:`MAX_DIGIT_BITS`]
  — the shared-memory histogram footprint bounds the top end, divergence
  the bottom.

* **Write-friendly candidate buffering.**  The strawman scatters the
  surviving bucket to global memory every pass — for adversarial
  distributions that is a second full-size write per pass.  RadiK defers
  the scatter: while the survivor set is larger than the candidate
  buffer (:func:`buffer_budget`, sized from k), a pass only *refines the
  digit-prefix filter* and pays nothing beyond its histogram read.  The
  first pass whose survivors fit the buffer performs one filter kernel
  (read the input once, append survivors and the already-resolved top
  elements with atomic tickets), and every later pass compacts within
  the buffer — tiny reads, tiny writes.

* **Batched multi-query execution.**  :func:`batched_radik_topk` fuses a
  ``[batch, n]`` matrix into one multi-query pass sequence: every fused
  kernel processes all still-active rows (per-row bookkeeping lives in
  the grid), so the launch count does not scale with the batch — the
  same amortization the bitonic batcher exploits, now available to
  radix-planned queries through the serving layer's Batch IR node.

Functionally the operator is exact and bit-equal to the canonical order
(value descending, lower row on ties, NaN ordered by its key code — the
documented radix-family artifact, see ``tests/test_special_values.py``).
The execution trace records the traffic the fused CUDA kernels would
generate, with the per-pass survivor fractions *measured* on the
functional run (the scale-substitution contract of
:mod:`repro.algorithms.base`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.algorithms import keys as keycodec
from repro.algorithms.base import (
    SUPPORTED_DTYPES,
    TopKAlgorithm,
    TopKResult,
    validate_topk_args,
)
from repro.algorithms.radix_select import (
    HISTOGRAM_INTS_PER_THREAD,
    _descending_prefix_counts,
    canonical_code_order,
)
from repro.errors import InvalidParameterError
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec, get_device

#: Smallest digit a pass will histogram; below this the pass bookkeeping
#: (launch, prefix sum) outweighs the reduction it buys.
MIN_DIGIT_BITS = 4

#: Largest digit a pass may histogram: 2^12 counters is the most a
#: per-block shared-memory histogram holds without spilling.
MAX_DIGIT_BITS = 12

#: Floor of the candidate-buffer budget in elements.
BUFFER_BASE = 4096

#: Budget elements granted per requested k (large k earns a larger buffer
#: — exactly the regime RadiK targets).
BUFFER_PER_K = 32


def buffer_budget(k: int) -> int:
    """Candidate-buffer capacity in elements for a k-selection."""
    return max(BUFFER_BASE, BUFFER_PER_K * int(k))


def plan_width(candidates_per_k: float, bits_left: int) -> int:
    """Digit width for the next pass.

    ``candidates_per_k`` is the surplus factor (current candidates over
    still-needed results); an ideal uniform pass of width w cuts it by
    2^w, so the target width is ``ceil(log2(surplus))``, clamped to the
    implementable range and to the key bits that remain.
    """
    target = math.ceil(math.log2(max(candidates_per_k, 2.0)))
    width = max(MIN_DIGIT_BITS, min(MAX_DIGIT_BITS, target))
    return max(1, min(bits_left, width))


def histogram_blocks(num_threads: int, elements: float) -> int:
    """Thread blocks a histogram launch over ``elements`` occupies."""
    needed = math.ceil(max(1.0, elements) / (256.0 * HISTOGRAM_INTS_PER_THREAD))
    return max(1, min(num_threads // 256, needed))


#: Scatter decision of one pass: defer (filter not yet affordable),
#: filter (first scatter into the candidate buffer), or compact
#: (in-buffer shuffle once buffered).
DEFER, FILTER, COMPACT = "defer", "filter", "compact"


@dataclass(frozen=True)
class PassRecord:
    """One adaptive pass as measured on the functional run."""

    width: int
    #: Survivor fraction (eta): candidates landing in the k-th bucket.
    eta: float
    #: Fraction of candidates emitted straight to the result (above the
    #: k-th bucket).
    emitted_fraction: float
    #: The pass's scatter decision (:data:`DEFER` / :data:`FILTER` /
    #: :data:`COMPACT`).
    action: str


def _select(
    data: np.ndarray, k: int, model_n: int | None = None
) -> tuple[np.ndarray, np.ndarray, list[PassRecord], int]:
    """The functional adaptive selection shared by the single and batched
    operators.

    Returns (values-as-codes sorted canonically, rows, pass records, and
    the candidate count the final sort consumed).

    ``model_n`` extends the scale-substitution contract to the *schedule*:
    digit widths and the defer/filter decision are planned from candidate
    counts scaled to the modeled input (the schedule the kernel would run
    at full size), while the loop's termination and the result stay exact
    on the functional payload.  Survivor fractions are still measured, so
    the trace extrapolates a schedule that matches the modeled surplus
    factor instead of the capped functional one.
    """
    n = len(data)
    scale = (model_n / n) if model_n else 1.0
    codes = keycodec.encode(data)
    candidates = codes
    candidate_rows = np.arange(n, dtype=np.int64)
    bits = keycodec.key_bits(data.dtype)
    budget = buffer_budget(k)

    result_codes: list[np.ndarray] = []
    result_rows: list[np.ndarray] = []
    remaining = k
    emitted_total = 0
    buffered = False
    shift = bits
    passes: list[PassRecord] = []

    while len(candidates) > remaining and shift > 0:
        width = plan_width(
            len(candidates) * scale / max(1, remaining), shift
        )
        shift -= width
        digits = keycodec.digit(candidates, shift, width)
        histogram = np.bincount(digits, minlength=1 << width)
        higher_counts = _descending_prefix_counts(histogram)
        at_least_counts = higher_counts + histogram
        bucket = int(np.max(np.flatnonzero(at_least_counts >= remaining)))
        in_bucket = digits == bucket
        above = digits > bucket
        survivors = int(histogram[bucket])
        emitted = int(above.sum())
        live = len(candidates)
        if buffered:
            action = COMPACT
        elif survivors * scale <= budget:
            action = FILTER
            buffered = True
        else:
            action = DEFER
        passes.append(
            PassRecord(
                width=width,
                eta=survivors / live,
                emitted_fraction=emitted / live,
                action=action,
            )
        )
        if emitted:
            result_codes.append(candidates[above])
            result_rows.append(candidate_rows[above])
            remaining -= emitted
            emitted_total += emitted
        candidates = candidates[in_bucket]
        candidate_rows = candidate_rows[in_bucket]
        if survivors <= remaining:
            break

    final_candidates = emitted_total + len(candidates)
    if remaining > 0:
        order = canonical_code_order(candidates, candidate_rows)[:remaining]
        result_codes.append(candidates[order])
        result_rows.append(candidate_rows[order])

    all_codes = np.concatenate(result_codes) if result_codes else candidates[:0]
    all_rows = np.concatenate(result_rows) if result_rows else candidate_rows[:0]
    order = canonical_code_order(all_codes, all_rows)[:k]
    return all_codes[order], all_rows[order], passes, final_candidates


def _trace_passes(
    trace: ExecutionTrace,
    model_n: float,
    width_bytes: int,
    num_threads: int,
    k: int,
    passes: list[PassRecord],
    final_fraction: float,
    label: str = "radik",
    batch: float = 1.0,
) -> None:
    """Append the pass kernels for one query (scaled to ``batch`` lanes).

    ``final_fraction`` is the measured final-sort input over n.  Traffic
    scales with ``batch`` (all lanes share each fused launch); the launch
    count does not — the point of the batched operator.
    """
    live = model_n
    materialized = model_n
    emitted_total = 0.0
    for index, record in enumerate(passes):
        blocks = histogram_blocks(num_threads, materialized)
        histogram_bytes = (1 << record.width) * 4.0 * blocks
        histogram = trace.launch(f"{label}-histogram-{index}")
        histogram.add_global_read(materialized * width_bytes * batch)
        histogram.add_global_write(histogram_bytes * batch)
        histogram.add_shared(materialized * 4.0 * batch)
        prefix = trace.launch(f"{label}-prefix-{index}")
        prefix.add_global_read(histogram_bytes * batch)
        prefix.add_global_write(histogram_bytes * batch)
        survivors = live * record.eta
        emitted = live * record.emitted_fraction
        if record.action == COMPACT:
            compact = trace.launch(f"{label}-compact-{index}")
            compact.add_global_read(live * width_bytes * batch)
            compact.add_global_write((survivors + emitted) * width_bytes * batch)
            compact.atomic_ops += (survivors + emitted) * batch
            materialized = survivors
        elif record.action == FILTER:
            emitted_total += emitted
            appended = survivors + emitted_total
            filter_kernel = trace.launch(f"{label}-filter-{index}")
            filter_kernel.add_global_read(materialized * width_bytes * batch)
            filter_kernel.add_global_write(appended * width_bytes * batch)
            filter_kernel.atomic_ops += appended * batch
            materialized = survivors
        else:
            # Deferred: the pass only refined the digit-prefix filter —
            # no data write, and the next histogram re-reads the input.
            emitted_total += emitted
        live = survivors
        trace.notes[f"width_{index}"] = record.width
        trace.notes[f"eta_{index}"] = record.eta
        trace.notes[f"action_{index}"] = record.action
    final_elements = max(float(k), model_n * final_fraction)
    final = trace.launch(f"{label}-final")
    final.add_global_read(final_elements * width_bytes * batch)
    final.add_global_write(k * width_bytes * batch)
    final.compute_ops += final_elements * max(1.0, math.log2(max(2.0, final_elements)))
    trace.notes["passes"] = len(passes)
    trace.notes["deferred_passes"] = sum(1 for p in passes if p.action == DEFER)


class RadiKTopK(TopKAlgorithm):
    """Top-k via adaptive-pass, write-buffered radix selection."""

    name = "radik"

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        validate_topk_args(data, k)
        n = len(data)
        with obs.span("phase:radik-passes", category="phase", n=n, k=k) as phase:
            top_codes, top_rows, passes, final_candidates = _select(
                data, k, model_n
            )
            phase.set(
                passes=len(passes),
                deferred=sum(1 for p in passes if p.action == DEFER),
            )
            registry = obs.active_metrics()
            if registry is not None:
                for record in passes:
                    registry.histogram("radik.survivor_fraction").observe(
                        record.eta
                    )
                    registry.histogram("radik.emitted_fraction").observe(
                        record.emitted_fraction
                    )
                    registry.histogram("radik.digit_width").observe(record.width)
        values = keycodec.decode(top_codes, data.dtype)

        trace = ExecutionTrace()
        _trace_passes(
            trace,
            float(model_n or n),
            keycodec.key_bytes(data.dtype),
            self.device.total_cores * 8,
            k,
            passes,
            final_candidates / n,
        )
        return self._result(values, top_rows, trace, k, n, model_n)


def batched_radik_topk(
    matrix: np.ndarray,
    k: int,
    device: DeviceSpec | None = None,
    model_rows: int | None = None,
) -> TopKResult:
    """Top-k of every row of a [batch, n] array via fused radix passes.

    Returns a :class:`TopKResult` whose ``values`` and ``indices`` are
    [batch, k] arrays (indices are column positions within each row).
    Every fused pass serves all rows still selecting: one histogram /
    prefix / scatter launch regardless of the batch size, with per-row
    bookkeeping riding in the grid.  Rows that finish early drop out of
    the later passes' traffic.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise InvalidParameterError("batched top-k expects a 2-D array")
    if matrix.dtype.type not in SUPPORTED_DTYPES:
        supported = ", ".join(t.__name__ for t in SUPPORTED_DTYPES)
        raise InvalidParameterError(
            f"unsupported dtype {matrix.dtype}; supported: {supported}"
        )
    rows, n = matrix.shape
    if rows == 0 or n == 0:
        raise InvalidParameterError("batched top-k needs a non-empty matrix")
    if k <= 0 or k > n:
        raise InvalidParameterError(f"k = {k} must be in [1, {n}]")
    device = device or get_device()
    width_bytes = keycodec.key_bytes(matrix.dtype)
    num_threads = device.total_cores * 8

    with obs.span(
        "batched-radik", category="api", rows=rows, n=n, k=k
    ) as span:
        values = np.empty((rows, k), dtype=matrix.dtype)
        indices = np.empty((rows, k), dtype=np.int64)
        schedules: list[tuple[list[PassRecord], int]] = []
        for row in range(rows):
            codes, row_indices, passes, final_candidates = _select(
                matrix[row], k
            )
            values[row] = keycodec.decode(codes, matrix.dtype)
            indices[row] = row_indices
            schedules.append((passes, final_candidates))

        # The fused trace: pass i is ONE launch triple serving every row
        # whose schedule still has an i-th pass; its traffic is the sum of
        # those rows' per-lane traffic.  The batch multiplier handles
        # model_rows extrapolation (rows beyond the functional batch are
        # modeled as repeating the measured lane mix).
        batch_scale = (model_rows or rows) / rows
        trace = ExecutionTrace()
        fused_passes = max(len(passes) for passes, _ in schedules)
        for index in range(fused_passes):
            active = [p[index] for p, _ in schedules if len(p) > index]
            fused_width = max(record.width for record in active)
            live_read = 0.0
            scatter_read = 0.0
            scatter_write = 0.0
            appended = 0.0
            for passes, _ in schedules:
                if len(passes) <= index:
                    continue
                lane_live = float(n)
                lane_materialized = float(n)
                lane_emitted = 0.0
                for record in passes[: index + 1]:
                    survivors = lane_live * record.eta
                    emitted = lane_live * record.emitted_fraction
                    if record is passes[index]:
                        live_read += lane_materialized
                        if record.action == COMPACT:
                            scatter_read += lane_live
                            scatter_write += survivors + emitted
                            appended += survivors + emitted
                        elif record.action == FILTER:
                            scatter_read += lane_materialized
                            scatter_write += survivors + lane_emitted + emitted
                            appended += survivors + lane_emitted + emitted
                    if record.action in (FILTER, COMPACT):
                        lane_materialized = survivors
                    lane_emitted += emitted
                    lane_live = survivors
            blocks = histogram_blocks(num_threads, live_read)
            histogram_bytes = (1 << fused_width) * 4.0 * blocks
            histogram = trace.launch(f"radik-batch-histogram-{index}")
            histogram.add_global_read(live_read * width_bytes * batch_scale)
            histogram.add_global_write(
                histogram_bytes * len(active) * batch_scale
            )
            histogram.add_shared(live_read * 4.0 * batch_scale)
            prefix = trace.launch(f"radik-batch-prefix-{index}")
            prefix.add_global_read(histogram_bytes * len(active) * batch_scale)
            prefix.add_global_write(histogram_bytes * len(active) * batch_scale)
            if scatter_write > 0.0:
                scatter = trace.launch(f"radik-batch-scatter-{index}")
                scatter.add_global_read(scatter_read * width_bytes * batch_scale)
                scatter.add_global_write(
                    scatter_write * width_bytes * batch_scale
                )
                scatter.atomic_ops += appended * batch_scale
        final_elements = sum(
            max(float(k), float(final)) for _, final in schedules
        )
        final = trace.launch("radik-batch-final")
        final.add_global_read(final_elements * width_bytes * batch_scale)
        final.add_global_write(rows * k * width_bytes * batch_scale)
        final.compute_ops += final_elements * max(
            1.0, math.log2(max(2.0, final_elements))
        )
        trace.notes["passes"] = fused_passes
        trace.notes["batch_rows"] = model_rows or rows
        from repro.observability.instrument import record_trace

        span.set(simulated_ms=record_trace(trace, device))

    return TopKResult(
        values=values,
        indices=indices,
        trace=trace,
        algorithm="batched-radik",
        k=k,
        n=rows * n,
        model_n=(model_rows or rows) * n,
    )
