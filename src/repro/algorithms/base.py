"""Common interface for all top-k algorithms.

Every algorithm produces a :class:`TopKResult`, which couples

* the *functional* answer — the real top-k values (and row indices)
  computed with numpy on the actual input, and
* the *execution trace* — the hardware counters the equivalent GPU kernels
  would generate (:class:`repro.gpu.counters.ExecutionTrace`), from which
  :mod:`repro.gpu.timing` derives simulated time.

Scale substitution
------------------

Functional runs use whatever input size the caller provides (tests use
thousands of elements; benchmarks default to about a million).  The paper
evaluates at n = 2^29, far beyond what a Python reproduction can execute
functionally in reasonable time.  Algorithms therefore accept a ``model_n``
parameter: the trace is built *as if* the input had ``model_n`` elements,
while data-dependent quantities (radix-select survivor fractions, heap
insert rates, ...) are measured from the functional run.  For the paper's
workloads these fractions are scale-free (they derive from uniform order
statistics), so the extrapolated trace is faithful; deviations are noted in
EXPERIMENTS.md.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec, get_device
from repro.gpu.timing import TraceTime, trace_time

#: dtypes the paper evaluates (Section 6.3).
SUPPORTED_DTYPES = (np.float32, np.float64, np.uint32, np.int32, np.uint64, np.int64)


@dataclass
class TopKResult:
    """The outcome of one top-k invocation."""

    values: np.ndarray
    indices: np.ndarray | None
    trace: ExecutionTrace
    algorithm: str
    k: int
    n: int
    model_n: int

    def simulated_time(self, device: DeviceSpec | None = None) -> TraceTime:
        """Simulated execution time of the trace on ``device``."""
        return trace_time(self.trace, device or get_device())

    def simulated_ms(self, device: DeviceSpec | None = None) -> float:
        """Simulated milliseconds (convenience for reports)."""
        return self.simulated_time(device).total_ms


def validate_topk_args(data: np.ndarray, k: int) -> None:
    """Shared argument validation for all algorithms.

    Enforced uniformly at every entry point (``topk``, the engine, the
    hybrid schedulers) so invalid configurations always raise
    :class:`InvalidParameterError` rather than a bare numpy ``TypeError``
    or ``IndexError`` from deep inside an algorithm.
    """
    if data.ndim != 1:
        raise InvalidParameterError("top-k expects a one-dimensional array")
    if isinstance(k, bool) or not isinstance(k, (int, np.integer)):
        raise InvalidParameterError(
            f"k must be an integer, got {type(k).__name__}"
        )
    if k <= 0:
        raise InvalidParameterError(f"k must be at least 1, got {k}")
    if k > len(data):
        raise InvalidParameterError(
            f"k = {k} exceeds the input size n = {len(data)}"
        )
    if data.dtype.type not in SUPPORTED_DTYPES:
        supported = ", ".join(t.__name__ for t in SUPPORTED_DTYPES)
        raise InvalidParameterError(
            f"unsupported dtype {data.dtype}; supported: {supported}"
        )


def reference_topk(data: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Ground-truth top-k via full sort — the testing oracle.

    Returns (values, indices), values sorted descending.  Ties are broken by
    lower index first (stable), matching all our algorithm implementations.
    """
    validate_topk_args(data, k)
    if data.dtype.kind == "f":
        keys = -data
    elif data.dtype == np.uint64:
        keys = np.iinfo(np.uint64).max - data
    else:
        keys = -data.astype(np.int64)
    order = np.argsort(keys, kind="stable")
    indices = order[:k]
    return data[indices], indices


class TopKAlgorithm(abc.ABC):
    """Base class for the five GPU algorithms and the CPU baselines."""

    #: Registry / report name, e.g. ``"bitonic"`` or ``"radix-select"``.
    name: str = "abstract"

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        # Observability: every concrete ``run`` override is wrapped so the
        # invocation emits an ``algorithm:<name>`` span with its kernel
        # launches as children (a no-op unless observation is enabled).
        run = cls.__dict__.get("run")
        if run is not None and not getattr(run, "__repro_traced__", False):
            from repro.observability.instrument import traced_algorithm

            cls.run = traced_algorithm(run)

    def __init__(self, device: DeviceSpec | None = None):
        self.device = device or get_device()

    @abc.abstractmethod
    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        """Compute the top-k (largest) elements of ``data``.

        ``model_n`` sets the input size the execution trace models; it
        defaults to ``len(data)`` (no extrapolation).
        """

    def supports(self, n: int, k: int, dtype: np.dtype) -> bool:
        """Whether the algorithm can run this configuration at all.

        Overridden by algorithms with hard resource limits (the per-thread
        heap's shared-memory capacity failure of Section 4.1).
        """
        return True

    def _result(
        self,
        values: np.ndarray,
        indices: np.ndarray | None,
        trace: ExecutionTrace,
        k: int,
        n: int,
        model_n: int | None,
    ) -> TopKResult:
        return TopKResult(
            values=values,
            indices=indices,
            trace=trace,
            algorithm=self.name,
            k=k,
            n=n,
            model_n=model_n or n,
        )
