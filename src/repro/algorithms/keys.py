"""Order-preserving bit transforms between keys and unsigned integers.

Radix-based algorithms operate on the *bits* of a key.  For the comparison
order of the bits to match the numeric order of the values, keys must be
transformed (Section 2.2 / the GGKS selection package use the same trick):

* unsigned integers — identity;
* signed integers — flip the sign bit;
* IEEE-754 floats — flip the sign bit for non-negative values, flip *all*
  bits for negative values.  The result orders exactly like the float
  (NaNs order above +inf, which we accept and document: the paper's
  workloads contain no NaNs).

All transforms are exact involutions up to :func:`decode` and are verified
by property-based tests against numpy's comparison order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

#: Bits per key for each supported dtype.
_WIDTHS = {
    np.dtype(np.float32): 32,
    np.dtype(np.uint32): 32,
    np.dtype(np.int32): 32,
    np.dtype(np.float64): 64,
    np.dtype(np.uint64): 64,
    np.dtype(np.int64): 64,
}


def key_bits(dtype: np.dtype) -> int:
    """Key width in bits (32 or 64)."""
    try:
        return _WIDTHS[np.dtype(dtype)]
    except KeyError:
        raise InvalidParameterError(f"unsupported radix key dtype {dtype}") from None


def key_bytes(dtype: np.dtype) -> int:
    """Key width in bytes — the w parameter of the Section 7 cost model."""
    return key_bits(dtype) // 8


def encode(values: np.ndarray) -> np.ndarray:
    """Map values to unsigned integers whose unsigned order matches them."""
    dtype = values.dtype
    if dtype == np.uint32 or dtype == np.uint64:
        return values.copy()
    if dtype == np.int32:
        return (values.view(np.uint32) ^ np.uint32(1 << 31)).astype(np.uint32)
    if dtype == np.int64:
        return (values.view(np.uint64) ^ np.uint64(1 << 63)).astype(np.uint64)
    if dtype == np.float32:
        bits = values.view(np.uint32)
        mask = np.where(
            bits >> np.uint32(31) == 1,
            np.uint32(0xFFFFFFFF),
            np.uint32(1 << 31),
        )
        return bits ^ mask
    if dtype == np.float64:
        bits = values.view(np.uint64)
        mask = np.where(
            bits >> np.uint64(63) == 1,
            np.uint64(0xFFFFFFFFFFFFFFFF),
            np.uint64(1 << 63),
        )
        return bits ^ mask
    raise InvalidParameterError(f"unsupported radix key dtype {dtype}")


def decode(codes: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Invert :func:`encode` back to the original dtype."""
    dtype = np.dtype(dtype)
    if dtype == np.uint32 or dtype == np.uint64:
        return codes.astype(dtype, copy=True)
    if dtype == np.int32:
        return (codes.astype(np.uint32) ^ np.uint32(1 << 31)).view(np.int32)
    if dtype == np.int64:
        return (codes.astype(np.uint64) ^ np.uint64(1 << 63)).view(np.int64)
    if dtype == np.float32:
        codes = codes.astype(np.uint32)
        mask = np.where(
            codes >> np.uint32(31) == 1,
            np.uint32(1 << 31),
            np.uint32(0xFFFFFFFF),
        )
        return (codes ^ mask).view(np.float32)
    if dtype == np.float64:
        codes = codes.astype(np.uint64)
        mask = np.where(
            codes >> np.uint64(63) == 1,
            np.uint64(1 << 63),
            np.uint64(0xFFFFFFFFFFFFFFFF),
        )
        return (codes ^ mask).view(np.float64)
    raise InvalidParameterError(f"unsupported radix key dtype {dtype}")


def digit(codes: np.ndarray, shift: int, digit_bits: int = 8) -> np.ndarray:
    """Extract the digit at bit offset ``shift`` as small integers."""
    if shift < 0 or digit_bits <= 0:
        raise InvalidParameterError("shift must be >= 0 and digit_bits > 0")
    mask = (1 << digit_bits) - 1
    return ((codes >> codes.dtype.type(shift)) & codes.dtype.type(mask)).astype(
        np.int64
    )
