"""Global-memory coalescing analysis.

The device services global loads/stores of a warp in 32-byte (or larger)
transactions.  When the 32 threads of a warp touch 32 consecutive 4-byte
words, the access coalesces into the minimum number of transactions; a
strided or scattered pattern multiplies the number of transactions and thus
the effective traffic.

The paper's algorithms are written to coalesce (Algorithm 1 iterates with a
stride of ``num_threads`` precisely for this reason), so in the timing model
the common case is an efficiency of 1.0.  This module quantifies the
alternative so tests and the per-thread-variant analysis can show *why* the
coalesced iteration order matters.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import InvalidParameterError

#: Size of one global-memory transaction segment in bytes.
TRANSACTION_BYTES = 32


def warp_transactions(
    byte_addresses: Iterable[int], transaction_bytes: int = TRANSACTION_BYTES
) -> int:
    """Number of memory transactions needed to service one warp access.

    ``byte_addresses`` are the starting byte addresses accessed by the
    active threads (one access each, assumed word-sized).  Accesses falling
    in the same aligned segment are serviced together.
    """
    if transaction_bytes <= 0:
        raise InvalidParameterError("transaction_bytes must be positive")
    segments = {address // transaction_bytes for address in byte_addresses}
    return max(1, len(segments))


def coalescing_efficiency(
    byte_addresses: list[int],
    word_bytes: int = 4,
    transaction_bytes: int = TRANSACTION_BYTES,
) -> float:
    """Fraction of transferred bytes that the warp actually requested.

    1.0 means perfectly coalesced; ``word_bytes / transaction_bytes`` (an
    eighth for 4-byte words) means fully scattered.
    """
    if not byte_addresses:
        return 1.0
    useful = len(byte_addresses) * word_bytes
    transferred = warp_transactions(byte_addresses, transaction_bytes) * transaction_bytes
    return min(1.0, useful / transferred)


def strided_loop_efficiency(
    num_threads: int,
    elements_per_thread: int,
    word_bytes: int = 4,
    contiguous_per_thread: bool = False,
) -> float:
    """Coalescing efficiency of the two canonical loop orders.

    * ``contiguous_per_thread=False`` — the paper's coalesced pattern:
      thread ``t`` reads elements ``t, t + nt, t + 2 nt, ...`` so each warp
      access covers 32 neighbouring elements (efficiency 1.0).
    * ``contiguous_per_thread=True`` — the naive partitioned pattern:
      thread ``t`` reads a contiguous range; each warp access scatters over
      32 distant segments.
    """
    warp = 32
    if not contiguous_per_thread:
        addresses = [t * word_bytes for t in range(warp)]
        return coalescing_efficiency(addresses, word_bytes)
    addresses = [t * elements_per_thread * word_bytes for t in range(warp)]
    return coalescing_efficiency(addresses, word_bytes)
