"""Deterministic fault injection for the simulated device stack.

Real GPUs fail in ways that are nearly impossible to reproduce on demand:
a device drops off the bus mid-launch, an ECC error flips a bit in a read,
the watchdog kills a long kernel, a PCIe staging transfer aborts.  Because
this library *simulates* its hardware, those failures can be made exactly
reproducible: a :class:`FaultInjector` is seeded, plan-driven, and fires
either on the Nth matching call to a site or with a seeded Bernoulli draw,
so the same seed always produces the same fault schedule.

Injection sites are threaded through the device stack as cheap
:func:`fault_point` calls (one context-var read when no injector is
installed — the same zero-overhead discipline as
:mod:`repro.observability`):

* ``"kernel-launch"``    — every :meth:`ExecutionTrace.launch`
  (detail = kernel name); the canonical place a ``DeviceLostError``
  surfaces.
* ``"simt-barrier"``     — every ``__syncthreads()`` of the micro SIMT
  executor; where the simulated watchdog trips.
* ``"pcie-transfer"``    — host <-> device staging in the chunked pipeline
  and multi-GPU gather.
* ``"device-launch"``    — per-device dispatch in :class:`MultiGpuTopK`
  (detail = ``"<device>#<index>"``).
* ``"result-transfer"``  — the D2H copy of a finished result in the
  resilient executor.
* ``"shared-memory-read"`` / ``"global-memory-read"`` — value-filter sites
  (silent plans flip a bit in the value instead of raising).
* ``"result-buffer"``    — array-filter site: a silent plan flips one bit
  of one element of a finished result, which the executor's verification
  hooks must catch.

Usage::

    from repro.gpu import faults

    plan = faults.FaultPlan(site="kernel-launch", fault="device-lost", nth=2)
    with faults.inject(faults.FaultInjector(seed=0, plans=[plan])):
        result = ResilientExecutor().run(values, k=32)
"""

from __future__ import annotations

import random
import struct
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    DeviceLostError,
    FaultError,
    KernelTimeoutError,
    MemoryCorruptionError,
    ResourceExhaustedError,
    TransferError,
)

#: Fault type name -> exception class raised at a firing fault point.
FAULT_ERRORS: dict[str, type] = {
    "device-lost": DeviceLostError,
    "memory-corruption": MemoryCorruptionError,
    "kernel-timeout": KernelTimeoutError,
    "transfer-error": TransferError,
    "resource-exhausted": ResourceExhaustedError,
}

#: All injectable fault type names, in a stable order for campaigns.
FAULT_TYPES = tuple(sorted(FAULT_ERRORS))


@dataclass
class FaultPlan:
    """One planned fault.

    Either ``nth`` (fire on the Nth matching call, 1-based) or
    ``probability`` (seeded Bernoulli per matching call) must select the
    firing calls.  ``max_injections`` bounds how often the plan fires
    (``None`` = unbounded).  ``match`` restricts the plan to calls whose
    detail string contains it (e.g. a kernel or device name).  A ``silent``
    plan does not raise: at value/array sites it flips a bit in the data
    instead, modeling undetected corruption that only result verification
    can catch.
    """

    site: str
    fault: str
    nth: int | None = None
    probability: float = 0.0
    max_injections: int | None = 1
    match: str | None = None
    silent: bool = False

    def __post_init__(self) -> None:
        if self.fault not in FAULT_ERRORS:
            known = ", ".join(FAULT_TYPES)
            raise ValueError(f"unknown fault type {self.fault!r}; known: {known}")
        if self.nth is not None and self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")


@dataclass(frozen=True)
class Injection:
    """One recorded firing: the fault schedule entry."""

    site: str
    detail: str
    fault: str
    call_index: int
    silent: bool


class FaultInjector:
    """Seeded, plan-driven producer of typed faults.

    The injector is deterministic: plans fire on exact call counts or on
    draws from a private ``random.Random(seed)``, so identical seeds and
    identical call sequences produce identical fault schedules.  Every
    firing is appended to :attr:`injections` for later inspection.
    """

    def __init__(self, seed: int = 0, plans: list[FaultPlan] | None = None):
        self.seed = seed
        self.plans: list[FaultPlan] = list(plans or [])
        self._rng = random.Random(seed)
        #: Matching-call counts per plan index.
        self._calls: dict[int, int] = {}
        #: Firing counts per plan index.
        self._fired: dict[int, int] = {}
        self.injections: list[Injection] = []

    def add(self, plan: FaultPlan) -> "FaultInjector":
        """Append a plan (chainable)."""
        self.plans.append(plan)
        return self

    @property
    def num_injections(self) -> int:
        return len(self.injections)

    def schedule(self) -> list[tuple[str, str, str]]:
        """The realized fault schedule as (site, detail, fault) tuples."""
        return [(i.site, i.detail, i.fault) for i in self.injections]

    # -- firing logic ----------------------------------------------------

    def _fire(self, site: str, detail: str) -> FaultPlan | None:
        """The first plan that fires for this call, if any."""
        chosen: FaultPlan | None = None
        for index, plan in enumerate(self.plans):
            if plan.site != site:
                continue
            if plan.match is not None and plan.match not in detail:
                continue
            count = self._calls.get(index, 0) + 1
            self._calls[index] = count
            fired = self._fired.get(index, 0)
            if plan.max_injections is not None and fired >= plan.max_injections:
                continue
            hit = False
            if plan.nth is not None:
                hit = count == plan.nth
            elif plan.probability > 0.0:
                hit = self._rng.random() < plan.probability
            if hit and chosen is None:
                self._fired[index] = fired + 1
                self.injections.append(
                    Injection(
                        site=site,
                        detail=detail,
                        fault=plan.fault,
                        call_index=count,
                        silent=plan.silent,
                    )
                )
                self._record(site, detail, plan)
                chosen = plan
        return chosen

    def _record(self, site: str, detail: str, plan: FaultPlan) -> None:
        """Publish the firing to the observability layer (if active)."""
        from repro import observability as obs

        registry = obs.active_metrics()
        if registry is not None:
            registry.counter(
                "faults.injected", site=site, fault=plan.fault
            ).inc()
        tracer = obs.current_tracer()
        if tracer is not None:
            with tracer.span(
                f"fault:{plan.fault}",
                category="fault",
                site=site,
                detail=detail,
                silent=plan.silent,
            ):
                pass

    # -- site APIs -------------------------------------------------------

    def _raise(self, plan: FaultPlan, site: str, detail: str) -> None:
        error_type = FAULT_ERRORS[plan.fault]
        message = f"injected {plan.fault} at {site}" + (
            f" ({detail})" if detail else ""
        )
        if issubclass(error_type, FaultError):
            raise error_type(message, site=site, detail=detail)
        raise error_type(message)

    def check(self, site: str, detail: str = "") -> None:
        """Raise the planned typed fault if a non-silent plan fires here.

        A *silent* plan firing at a plain fault point is recorded but has
        no effect (there is no value to corrupt).
        """
        plan = self._fire(site, detail)
        if plan is None or plan.silent:
            return
        self._raise(plan, site, detail)

    def filter_value(self, site: str, value: float) -> float:
        """Memory-read site: bit-flip (silent) or raise (non-silent)."""
        plan = self._fire(site, "")
        if plan is None:
            return value
        if plan.silent:
            return flip_float_bit(value, self._rng.randrange(0, 52))
        self._raise(plan, site, "")

    def filter_array(self, site: str, values: np.ndarray, detail: str = "") -> None:
        """Array site: flip one bit of one element (silent) or raise."""
        plan = self._fire(site, detail)
        if plan is None:
            return
        if not plan.silent:
            self._raise(plan, site, detail)
        if len(values) == 0:
            return
        index = self._rng.randrange(0, len(values))
        flip_array_bit(values, index, self._rng)


def flip_float_bit(value: float, bit: int) -> float:
    """``value`` with one mantissa/exponent bit of its float64 image flipped."""
    (bits,) = struct.unpack("<Q", struct.pack("<d", float(value)))
    (flipped,) = struct.unpack("<d", struct.pack("<Q", bits ^ (1 << bit)))
    return flipped

def flip_array_bit(values: np.ndarray, index: int, rng: random.Random) -> None:
    """Flip one random bit of ``values[index]`` in place (any dtype)."""
    width = values.dtype.itemsize * 8
    bit = rng.randrange(0, width)
    uint_dtype = np.dtype(f"u{values.dtype.itemsize}")
    view = values.view(uint_dtype)
    view[index] ^= uint_dtype.type(1 << bit)


_INJECTOR: ContextVar[FaultInjector | None] = ContextVar(
    "repro_fault_injector", default=None
)


def active_injector() -> FaultInjector | None:
    """The installed injector, or None when fault injection is disabled."""
    return _INJECTOR.get()


@contextmanager
def inject(injector: FaultInjector):
    """Install ``injector`` for the duration of a ``with`` block."""
    token = _INJECTOR.set(injector)
    try:
        yield injector
    finally:
        _INJECTOR.reset(token)


@contextmanager
def suspended():
    """Disable fault injection for the duration of a ``with`` block.

    Cost models *predict* runtimes by building the same execution traces
    the algorithms would; those trace constructions are host-side math, not
    device activity, so they must not trip injection sites meant for real
    kernel launches.
    """
    token = _INJECTOR.set(None)
    try:
        yield
    finally:
        _INJECTOR.reset(token)


def fault_point(site: str, detail: str = "") -> None:
    """Declare an injection site.

    The call every instrumented layer makes; when no injector is installed
    it performs one context-var read and returns.  With an injector it may
    raise a typed :class:`~repro.errors.ReproError` subclass.
    """
    injector = _INJECTOR.get()
    if injector is None:
        return
    injector.check(site, detail)


def filter_read(site: str, value: float) -> float:
    """Value-filter variant of :func:`fault_point` for memory reads."""
    injector = _INJECTOR.get()
    if injector is None:
        return value
    return injector.filter_value(site, value)


def filter_result(site: str, values: np.ndarray, detail: str = "") -> None:
    """Array-filter variant of :func:`fault_point` for finished buffers."""
    injector = _INJECTOR.get()
    if injector is None:
        return
    injector.filter_array(site, values, detail)
