"""Simulated memories for the micro SIMT executor.

These classes back :mod:`repro.gpu.simt`, the small functional simulator we
use to *validate* the analytical traffic and bank-conflict models at small
problem sizes.  They store real values (so simulated kernels compute real
results) while auditing every access:

* :class:`SharedMemory` — banked storage; accesses from the threads of a
  warp are aligned by their per-epoch instruction slot (SIMT threads execute
  the same instruction stream, so the i-th shared access of each thread in
  an epoch belongs to the same warp instruction) and bank conflicts are
  counted per aligned slot with :func:`repro.gpu.banks.warp_conflict_factor`.
* :class:`GlobalMemory` — flat storage; warp accesses are coalesced into
  32-byte transactions with :func:`repro.gpu.coalescing.warp_transactions`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.gpu.banks import warp_conflict_factor
from repro.gpu.coalescing import warp_transactions
from repro.gpu.faults import filter_read


@dataclass
class MemoryStats:
    """Access statistics accumulated by a simulated memory."""

    reads: int = 0
    writes: int = 0
    #: Warp-level access slots observed (each costs at least one cycle).
    access_slots: int = 0
    #: Total serialized cycles including bank-conflict replays.
    serialized_cycles: int = 0
    #: Global-memory transactions issued (32-byte segments).
    transactions: int = 0

    @property
    def conflict_cycles(self) -> int:
        """Extra cycles caused purely by bank conflicts."""
        return self.serialized_cycles - self.access_slots

    @property
    def average_conflict_factor(self) -> float:
        """Mean serialization factor over all warp access slots."""
        if self.access_slots == 0:
            return 1.0
        return self.serialized_cycles / self.access_slots


class SharedMemory:
    """Banked shared memory for one simulated thread block.

    Threads record accesses through :meth:`read` / :meth:`write`; the
    executor calls :meth:`flush_epoch` at every barrier to align accesses
    into warp instructions and count conflicts.
    """

    def __init__(self, num_words: int, num_banks: int = 32, warp_size: int = 32):
        self._data: list[float] = [0.0] * num_words
        self._num_banks = num_banks
        self._warp_size = warp_size
        self.stats = MemoryStats()
        # (thread, slot, address) tuples of the current epoch.
        self._pending: list[tuple[int, int, int]] = []
        self._slot_counter: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._data)

    def _check(self, address: int) -> None:
        if not 0 <= address < len(self._data):
            raise SimulationError(
                f"shared memory access out of bounds: {address} "
                f"(size {len(self._data)})"
            )

    def _record(self, thread: int, address: int) -> None:
        slot = self._slot_counter.get(thread, 0)
        self._slot_counter[thread] = slot + 1
        self._pending.append((thread, slot, address))

    def read(self, thread: int, address: int) -> float:
        self._check(address)
        self._record(thread, address)
        self.stats.reads += 1
        # Fault-injection site: a silent corruption plan flips a bit in the
        # returned value; a raising plan surfaces MemoryCorruptionError.
        return filter_read("shared-memory-read", self._data[address])

    def write(self, thread: int, address: int, value: float) -> None:
        self._check(address)
        self._record(thread, address)
        self.stats.writes += 1
        self._data[address] = value

    def flush_epoch(self) -> None:
        """Align the epoch's accesses into warp instructions and audit them."""
        slots: dict[tuple[int, int], list[int]] = {}
        for thread, slot, address in self._pending:
            warp = thread // self._warp_size
            slots.setdefault((warp, slot), []).append(address)
        for addresses in slots.values():
            factor = warp_conflict_factor(addresses, self._num_banks)
            self.stats.access_slots += 1
            self.stats.serialized_cycles += factor
        self._pending.clear()
        self._slot_counter.clear()


class GlobalMemory:
    """Flat global memory with coalescing audit."""

    def __init__(self, data: list[float], word_bytes: int = 4, warp_size: int = 32):
        self._data = list(data)
        self._word_bytes = word_bytes
        self._warp_size = warp_size
        self.stats = MemoryStats()
        self._pending: list[tuple[int, int, int]] = []
        self._slot_counter: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._data)

    def snapshot(self) -> list[float]:
        """Copy of the current memory contents."""
        return list(self._data)

    def _check(self, address: int) -> None:
        if not 0 <= address < len(self._data):
            raise SimulationError(
                f"global memory access out of bounds: {address} "
                f"(size {len(self._data)})"
            )

    def _record(self, thread: int, address: int) -> None:
        slot = self._slot_counter.get(thread, 0)
        self._slot_counter[thread] = slot + 1
        self._pending.append((thread, slot, address))

    def read(self, thread: int, address: int) -> float:
        self._check(address)
        self._record(thread, address)
        self.stats.reads += 1
        # Fault-injection site, mirroring SharedMemory.read.
        return filter_read("global-memory-read", self._data[address])

    def write(self, thread: int, address: int, value: float) -> None:
        self._check(address)
        self._record(thread, address)
        self.stats.writes += 1
        self._data[address] = value

    def flush_epoch(self) -> None:
        """Coalesce the epoch's accesses into transactions."""
        slots: dict[tuple[int, int], list[int]] = {}
        for thread, slot, address in self._pending:
            warp = thread // self._warp_size
            slots.setdefault((warp, slot), []).append(address)
        for addresses in slots.values():
            byte_addresses = [a * self._word_bytes for a in addresses]
            self.stats.access_slots += 1
            self.stats.transactions += warp_transactions(byte_addresses)
        self._pending.clear()
        self._slot_counter.clear()
