"""Timing model: hardware counters -> simulated seconds.

This implements the composition rule of the paper's Section 7 cost model.
For each kernel the GPU overlaps global traffic, shared traffic and compute
across its many warps, so the kernel's time is the *maximum* of the
per-resource times, not their sum:

    T_kernel = max(T_global, T_shared, T_compute) + T_atomics

* ``T_global``  = global bytes moved / (B_G * derating(occupancy))
* ``T_shared``  = conflict-weighted shared bytes / B_S
* ``T_compute`` = scalar ops / aggregate core throughput — only relevant for
  compute-bound kernels (none of the GPU top-k kernels are; the CPU bitonic
  variant is, which is modeled separately in :mod:`repro.cpu`)
* divergent warp iterations are charged as compute at one warp-instruction
  each (the per-thread heap algorithm's penalty)
* atomics serialize against memory and are charged additively (bucket
  select's penalty)

A trace's total time adds one kernel-launch overhead per kernel — the cost
that the paper's kernel-fusion optimization amortizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelTimeoutError
from repro.gpu.counters import ExecutionTrace, KernelCounters
from repro.gpu.device import DeviceSpec
from repro.gpu.occupancy import bandwidth_derating
from repro.observability import active_metrics

#: Kernel name the resilient executor uses for retry-backoff accounting;
#: exempt from the watchdog (it is idle time, not a running kernel).
BACKOFF_KERNEL = "resilience-backoff"


@dataclass(frozen=True)
class KernelTime:
    """Per-resource breakdown of one kernel's simulated time."""

    name: str
    global_time: float
    shared_time: float
    compute_time: float
    atomic_time: float
    launch_overhead: float
    fixed_time: float = 0.0

    @property
    def total(self) -> float:
        """The kernel's simulated wall time."""
        bound = max(self.global_time, self.shared_time, self.compute_time)
        return bound + self.atomic_time + self.launch_overhead + self.fixed_time

    @property
    def bound_by(self) -> str:
        """Which resource dominates this kernel ("global"/"shared"/"compute")."""
        times = {
            "global": self.global_time,
            "shared": self.shared_time,
            "compute": self.compute_time,
        }
        return max(times, key=times.get)


def kernel_time(counters: KernelCounters, device: DeviceSpec) -> KernelTime:
    """Simulated time of a single kernel launch on ``device``."""
    derating = bandwidth_derating(counters.occupancy)
    global_time = counters.global_bytes / (
        device.global_bandwidth * device.global_efficiency * derating
    )
    shared_time = counters.shared_bytes_weighted / (
        device.shared_bandwidth * device.shared_efficiency
    )
    # One warp-instruction per scalar op spread over all cores; divergent
    # iterations occupy a full warp each.
    ops = counters.compute_ops + counters.divergent_iterations * device.warp_size
    compute_time = ops / (device.total_cores * device.clock_hz)
    atomic_time = counters.atomic_ops * device.atomic_op_cost / device.num_sms
    launch = 0.0 if counters.fixed_seconds else device.kernel_launch_overhead
    timing = KernelTime(
        name=counters.name,
        global_time=global_time,
        shared_time=shared_time,
        compute_time=compute_time,
        atomic_time=atomic_time,
        launch_overhead=launch,
        fixed_time=counters.fixed_seconds,
    )
    if (
        device.watchdog_seconds is not None
        and counters.name != BACKOFF_KERNEL
        and timing.total > device.watchdog_seconds
    ):
        raise KernelTimeoutError(
            f"kernel {counters.name!r} would run {timing.total * 1e3:.3f} ms, "
            f"past the {device.watchdog_seconds * 1e3:.3f} ms watchdog limit "
            f"of {device.name}",
            site="timing-watchdog",
            detail=counters.name,
        )
    return timing


@dataclass(frozen=True)
class TraceTime:
    """Simulated time of a full algorithm invocation."""

    kernels: tuple[KernelTime, ...]

    @property
    def total(self) -> float:
        return sum(kernel.total for kernel in self.kernels)

    @property
    def total_ms(self) -> float:
        return self.total * 1e3

    def by_kernel(self) -> dict[str, float]:
        """Aggregate simulated time per kernel name."""
        times: dict[str, float] = {}
        for kernel in self.kernels:
            times[kernel.name] = times.get(kernel.name, 0.0) + kernel.total
        return times

    def render(self, width: int = 50) -> str:
        """ASCII timeline: one bar per kernel, scaled to the total.

        The tool a developer reaches for first when asking "where does the
        time go" — e.g. whether a kernel is global- or shared-bound, and
        which launch dominates.
        """
        total = self.total
        if total <= 0:
            return "(empty trace)"
        lines = [f"total {total * 1e3:.3f} ms"]
        for kernel in self.kernels:
            share = kernel.total / total
            bar = "#" * max(1, int(round(share * width)))
            lines.append(
                f"  {kernel.name:<24} {kernel.total * 1e3:9.3f} ms "
                f"[{kernel.bound_by:>7}] {bar}"
            )
        return "\n".join(lines)


def trace_time(trace: ExecutionTrace, device: DeviceSpec) -> TraceTime:
    """Simulated time of an execution trace (sum over kernel launches)."""
    timing = TraceTime(tuple(kernel_time(k, device) for k in trace.kernels))
    registry = active_metrics()
    if registry is not None:
        registry.counter("timing.trace_time_calls").inc()
        registry.histogram("timing.trace_total_ms", device=device.name).observe(
            timing.total_ms
        )
    return timing


def memory_bandwidth_bound(num_bytes: float, device: DeviceSpec) -> float:
    """The paper's lower bound: time to read the input once from global memory.

    Plotted as the "Memory Bandwidth" line in Figure 11.
    """
    return num_bytes / device.global_bandwidth
