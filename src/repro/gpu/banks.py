"""Shared-memory bank-conflict analysis.

GPU shared memory is organized into ``num_banks`` word-wide banks (32 on all
the paper's hardware).  In one cycle the threads of a warp may each access
one 4-byte word; accesses to *distinct words in the same bank* serialize,
while accesses to the *same* word broadcast for free.  The serialization
multiplier of an access phase is exactly the ``delta_i`` factor in the
paper's Section 7 cost model term ``delta_i * (D_Ii + D_Oi) / B_S``.

Model layers
------------

1. :func:`warp_conflict_factor` — the cycle-level primitive: given the word
   addresses a warp touches in one instruction, the serialization factor
   (1 = conflict-free, 2 = two-way conflict, ...).

2. **Combined steps** (Section 4.3 "Combining/Sequentializing Multiple
   Steps").  A combined step groups consecutive bitonic network steps so
   each thread loads ``B = 2**num_free_bits`` elements into registers,
   performs all grouped comparisons there, and writes the elements back.
   The element set a thread owns is described by the set of *free index
   bits* the group spans (:class:`ChunkShape`): comparison distances
   ``2**b`` for every ``b`` in the group must be free bits, and extra low
   bits may be added to fill the register budget (this produces the
   "multiple contiguous runs at a large distance" shape of the paper's
   Figure 10).

3. Optimization semantics:

   * **no optimization** — threads walk their elements in lockstep
     (element ``j`` on cycle ``j``); conflicts computed from the raw
     addresses.  Contiguous chunks of size B conflict B-way (Figure 6).
   * **padding** (Figure 7) — logical word ``a`` maps to physical word
     ``a + a // num_banks`` (one pad word per bank row).  This makes
     contiguous chunks conflict-free but leaves strided groups conflicted
     (Figure 10a).
   * **chunk permutation** (Figure 10b) — the kernel may stagger *which*
     owned element each thread touches per cycle and relocate chunks, as
     long as the schedule is a uniform function of the thread id (SIMT
     executes one instruction for the whole warp).  We model this as the
     best factor achievable over a family of uniform schedules
     (identity / rotations / XOR swizzles, each with and without padding).
     For every group shape arising in the paper's kernels with k <= 256
     this reaches 1.0, matching the paper's claim that chunk permutation
     removes all remaining local-sort conflicts for k <= 256.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterable

from repro.errors import InvalidParameterError

#: Word size used by the bank mapping (shared memory banks are 4 bytes wide).
BANK_WORD_BYTES = 4


def pad_address(address: int, num_banks: int) -> int:
    """Physical word address after array padding.

    Viewing shared memory as a 2D array of ``num_banks`` columns, padding
    allocates ``num_banks + 1`` columns and leaves the extra column unused
    (the grey cells of the paper's Figure 7).  Logical word ``a`` therefore
    lands at physical word ``a + a // num_banks``.
    """
    return address + address // num_banks


def warp_conflict_factor(addresses: Iterable[int], num_banks: int = 32) -> int:
    """Serialization factor for one warp access.

    ``addresses`` are the word addresses accessed by the active threads of a
    warp in a single cycle.  The hardware replays the access once per
    distinct word in the most-contended bank; identical words broadcast.
    Returns 1 for a conflict-free (or empty) access.
    """
    if num_banks <= 0:
        raise InvalidParameterError("num_banks must be positive")
    words_per_bank: dict[int, set[int]] = {}
    for address in addresses:
        words_per_bank.setdefault(address % num_banks, set()).add(address)
    if not words_per_bank:
        return 1
    return max(len(words) for words in words_per_bank.values())


@dataclass(frozen=True)
class ChunkShape:
    """The element set owned by each thread during one combined step.

    ``free_bits`` are the index-bit positions enumerated by the thread's
    private elements; the remaining index bits are taken from the thread
    id (low thread bits fill the low non-free positions first).  A thread
    therefore owns ``B = 2**len(free_bits)`` elements.

    Examples:

    * ``ChunkShape((0, 1, 2, 3))`` — a contiguous 16-element chunk, the
      common case once steps at distances 8, 4, 2, 1 are grouped.
    * ``ChunkShape((0, 1, 2, 4))`` — two contiguous 8-element runs at
      distance 16 (the Figure 10 situation).
    """

    free_bits: tuple[int, ...]

    def __post_init__(self) -> None:
        bits = tuple(sorted(set(self.free_bits)))
        if not bits or any(b < 0 for b in bits):
            raise InvalidParameterError("free_bits must be non-negative and non-empty")
        object.__setattr__(self, "free_bits", bits)

    @property
    def elements_per_thread(self) -> int:
        return 1 << len(self.free_bits)

    @property
    def is_contiguous(self) -> bool:
        """True when the owned elements form one contiguous chunk."""
        return self.free_bits == tuple(range(len(self.free_bits)))

    def covers_distance(self, distance: int) -> bool:
        """Whether a comparison at ``distance`` stays within one thread."""
        return distance.bit_length() - 1 in self.free_bits

    def owned_indices(self, thread: int, max_index_bits: int = 20) -> list[int]:
        """Logical element indices owned by ``thread``."""
        free = self.free_bits
        rest = [b for b in range(max_index_bits) if b not in free]
        base = 0
        remaining = thread
        for bit in rest:
            base |= (remaining & 1) << bit
            remaining >>= 1
        indices = []
        for m in range(1 << len(free)):
            address = base
            for position, bit in enumerate(free):
                address |= ((m >> position) & 1) << bit
            indices.append(address)
        return indices


def _schedule_family(count: int) -> list[Callable[[int, int], int]]:
    """Uniform (SIMT-legal) access schedules: element index = f(cycle, thread)."""
    schedules: list[Callable[[int, int], int]] = [lambda j, t: j]
    mask = count - 1
    for rotation in (1, count // 2, max(1, count // 4)):
        schedules.append(lambda j, t, r=rotation: (j + r * t) % count)
    schedules.append(lambda j, t: j ^ (t & mask))
    for shift in (1, 2, 3, 4):
        schedules.append(lambda j, t, s=shift: j ^ ((t >> s) & mask))
        schedules.append(lambda j, t, s=shift: (j + (t >> s)) % count)
    return schedules


def _lockstep_factor(
    shape: ChunkShape,
    schedule: Callable[[int, int], int],
    padding: bool,
    num_banks: int,
    warp_size: int,
) -> float:
    """Average conflict factor of one schedule over all cycles of a warp."""
    count = shape.elements_per_thread
    owned = [shape.owned_indices(thread) for thread in range(warp_size)]
    total = 0
    for cycle in range(count):
        addresses = []
        for thread in range(warp_size):
            address = owned[thread][schedule(cycle, thread)]
            if padding:
                address = pad_address(address, num_banks)
            addresses.append(address)
        total += warp_conflict_factor(addresses, num_banks)
    return total / count


@lru_cache(maxsize=4096)
def chunk_conflict_factor(
    shape: ChunkShape,
    padding: bool = False,
    chunk_permutation: bool = False,
    num_banks: int = 32,
    warp_size: int = 32,
) -> float:
    """The delta factor for one combined step's shared-memory access phase.

    * Without chunk permutation the kernel walks elements in lockstep
      (identity schedule); ``padding`` decides the address mapping.
    * With chunk permutation the kernel is free to stagger accesses and
      relocate chunks with any uniform schedule; we return the best factor
      over the schedule family with and without padding (relocation can
      locally undo padding, so both layouts are available to it).
    """
    if not chunk_permutation:
        return _lockstep_factor(shape, lambda j, t: j, padding, num_banks, warp_size)
    best = float("inf")
    for use_padding in (padding, not padding):
        for schedule in _schedule_family(shape.elements_per_thread):
            factor = _lockstep_factor(shape, schedule, use_padding, num_banks, warp_size)
            best = min(best, factor)
            if best == 1.0:
                return 1.0
    return best


@lru_cache(maxsize=1024)
def single_step_conflict_factor(
    distance: int, num_banks: int = 32, warp_size: int = 32
) -> float:
    """Conflict factor for an *uncombined* compare-exchange step.

    One thread handles one comparison pair: thread ``t`` reads elements
    ``i`` and ``i + distance`` where ``i`` spreads the low thread bits below
    the distance bit (Algorithm 2 lines 5-6).  We average the factor of the
    two read cycles (the write pattern is identical).
    """
    if distance <= 0 or distance & (distance - 1):
        raise InvalidParameterError("distance must be a positive power of two")
    low_mask = distance - 1
    first = []
    second = []
    for thread in range(warp_size):
        low = thread & low_mask
        index = ((thread >> (distance.bit_length() - 1)) << distance.bit_length()) | low
        first.append(index)
        second.append(index + distance)
    factor_first = warp_conflict_factor(first, num_banks)
    factor_second = warp_conflict_factor(second, num_banks)
    return (factor_first + factor_second) / 2


def strided_access_conflict_factor(
    stride: int, num_banks: int = 32, warp_size: int = 32
) -> int:
    """Conflict factor when warp thread ``t`` accesses word ``t * stride``.

    The classical reference model: the factor is ``gcd(stride, num_banks)``
    for power-of-two strides (capped by the warp size).
    """
    addresses = [thread * stride for thread in range(warp_size)]
    return warp_conflict_factor(addresses, num_banks)
