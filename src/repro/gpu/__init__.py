"""GPU execution-model simulator.

The substrate the reproduction runs on: device profiles, hardware counters,
bank-conflict and coalescing analysis, occupancy, a bandwidth-based timing
model, and a micro SIMT executor for small-scale validation.
"""

from repro.gpu.banks import (
    ChunkShape,
    chunk_conflict_factor,
    pad_address,
    single_step_conflict_factor,
    strided_access_conflict_factor,
    warp_conflict_factor,
)
from repro.gpu.coalescing import coalescing_efficiency, warp_transactions
from repro.gpu.counters import ExecutionTrace, KernelCounters
from repro.gpu.device import (
    GTX_1080,
    TITAN_X_MAXWELL,
    V100,
    DeviceSpec,
    get_device,
    list_devices,
    register_device,
)
from repro.gpu.occupancy import (
    BlockResources,
    bandwidth_derating,
    blocks_per_sm,
    occupancy,
    register_spill_fraction,
)
from repro.gpu.timing import (
    KernelTime,
    TraceTime,
    kernel_time,
    memory_bandwidth_bound,
    trace_time,
)

__all__ = [
    "ChunkShape",
    "chunk_conflict_factor",
    "pad_address",
    "single_step_conflict_factor",
    "strided_access_conflict_factor",
    "warp_conflict_factor",
    "coalescing_efficiency",
    "warp_transactions",
    "ExecutionTrace",
    "KernelCounters",
    "DeviceSpec",
    "get_device",
    "list_devices",
    "register_device",
    "TITAN_X_MAXWELL",
    "GTX_1080",
    "V100",
    "BlockResources",
    "bandwidth_derating",
    "blocks_per_sm",
    "occupancy",
    "register_spill_fraction",
    "KernelTime",
    "TraceTime",
    "kernel_time",
    "memory_bandwidth_bound",
    "trace_time",
]
