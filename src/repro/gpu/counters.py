"""Hardware counters collected while executing simulated kernels.

Every algorithm in this library runs *functionally* (numpy produces the real
top-k) while recording the memory traffic and hazard events the equivalent
CUDA kernel would generate.  The timing model (:mod:`repro.gpu.timing`)
converts these counters into simulated seconds on a :class:`~repro.gpu.device.DeviceSpec`.

The counter set follows the quantities the paper's Section 7 cost model is
built from:

* global bytes read / written (the D/B_G terms),
* shared memory bytes moved, *weighted* by bank-conflict serialization
  (the delta_i (D_Ii + D_Oi)/B_S terms),
* kernel launches,
* atomic operations (bucket select),
* warp-divergent iterations (per-thread heap top-k).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.faults import fault_point


@dataclass
class KernelCounters:
    """Traffic and hazard counters for one simulated kernel launch."""

    name: str = "kernel"
    global_bytes_read: float = 0.0
    global_bytes_written: float = 0.0
    #: Shared memory traffic in bytes assuming conflict-free access.
    shared_bytes: float = 0.0
    #: Shared memory traffic in bytes after multiplying each access phase by
    #: its bank-conflict serialization factor delta_i (>= 1).
    shared_bytes_weighted: float = 0.0
    atomic_ops: float = 0.0
    #: Number of warp-serialized iterations caused by divergent branches
    #: (e.g. heap updates in the per-thread algorithm).  Each costs roughly
    #: one warp-instruction's worth of time for the whole warp.
    divergent_iterations: float = 0.0
    #: Compute work in scalar operations; only matters for kernels that are
    #: compute-bound (CPU bitonic top-k is; the GPU kernels are not).
    compute_ops: float = 0.0
    #: Occupancy in [0, 1]; bandwidth is derated when too few warps are
    #: resident to saturate the memory system.
    occupancy: float = 1.0
    #: Directly modeled seconds (used by the CPU baselines, whose timing is
    #: computed against a CpuSpec rather than from GPU traffic counters).
    fixed_seconds: float = 0.0

    @property
    def global_bytes(self) -> float:
        """Total global memory traffic of the kernel."""
        return self.global_bytes_read + self.global_bytes_written

    def add_global_read(self, num_bytes: float) -> None:
        self.global_bytes_read += num_bytes

    def add_global_write(self, num_bytes: float) -> None:
        self.global_bytes_written += num_bytes

    def add_shared(self, num_bytes: float, conflict_factor: float = 1.0) -> None:
        """Record a shared-memory access phase.

        ``conflict_factor`` is the average serialization multiplier for the
        phase: 1.0 means conflict-free, 2.0 means every warp access was a
        two-way bank conflict, and so on.
        """
        if conflict_factor < 1.0:
            raise ValueError("conflict factor cannot be below 1")
        self.shared_bytes += num_bytes
        self.shared_bytes_weighted += num_bytes * conflict_factor

    def merge(self, other: "KernelCounters") -> None:
        """Accumulate another kernel's counters into this one (in place)."""
        self.global_bytes_read += other.global_bytes_read
        self.global_bytes_written += other.global_bytes_written
        self.shared_bytes += other.shared_bytes
        self.shared_bytes_weighted += other.shared_bytes_weighted
        self.atomic_ops += other.atomic_ops
        self.divergent_iterations += other.divergent_iterations
        self.compute_ops += other.compute_ops
        self.fixed_seconds += other.fixed_seconds

    def scaled(self, factor: float, name: str | None = None) -> "KernelCounters":
        """A copy with all traffic counters multiplied by ``factor``.

        Used to extrapolate per-element traffic measured at functional scale
        to the paper's 2^29-element datasets.
        """
        return KernelCounters(
            name=name or self.name,
            global_bytes_read=self.global_bytes_read * factor,
            global_bytes_written=self.global_bytes_written * factor,
            shared_bytes=self.shared_bytes * factor,
            shared_bytes_weighted=self.shared_bytes_weighted * factor,
            atomic_ops=self.atomic_ops * factor,
            divergent_iterations=self.divergent_iterations * factor,
            compute_ops=self.compute_ops * factor,
            occupancy=self.occupancy,
            fixed_seconds=self.fixed_seconds * factor,
        )


@dataclass
class ExecutionTrace:
    """An ordered list of kernel launches for one algorithm invocation.

    The trace is the unit the timing model consumes: total simulated time is
    the sum of per-kernel times plus one launch overhead per kernel.
    """

    kernels: list[KernelCounters] = field(default_factory=list)
    #: Free-form annotations recorded by algorithms (heap insert counts,
    #: per-pass survivor fractions, ...), surfaced in benchmark reports.
    notes: dict[str, float] = field(default_factory=dict)

    def launch(self, name: str) -> KernelCounters:
        """Start a new kernel and return its counter object.

        Every simulated kernel launch passes through here, which makes it
        the canonical ``"kernel-launch"`` fault-injection site: an
        installed :class:`~repro.gpu.faults.FaultInjector` may raise a
        typed :class:`~repro.errors.DeviceLostError` (or another planned
        fault) instead of returning counters.
        """
        fault_point("kernel-launch", name)
        counters = KernelCounters(name=name)
        self.kernels.append(counters)
        return counters

    def extend(self, other: "ExecutionTrace") -> None:
        """Append all kernels and notes from another trace."""
        self.kernels.extend(other.kernels)
        self.notes.update(other.notes)

    @property
    def num_launches(self) -> int:
        return len(self.kernels)

    @property
    def global_bytes(self) -> float:
        return sum(kernel.global_bytes for kernel in self.kernels)

    @property
    def shared_bytes(self) -> float:
        return sum(kernel.shared_bytes for kernel in self.kernels)

    @property
    def shared_bytes_weighted(self) -> float:
        return sum(kernel.shared_bytes_weighted for kernel in self.kernels)

    @property
    def atomic_ops(self) -> float:
        return sum(kernel.atomic_ops for kernel in self.kernels)

    def scaled(self, factor: float) -> "ExecutionTrace":
        """A copy of the trace with all kernels scaled by ``factor``."""
        copy = ExecutionTrace(notes=dict(self.notes))
        copy.kernels = [kernel.scaled(factor) for kernel in self.kernels]
        return copy
