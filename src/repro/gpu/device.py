"""Device specifications for the simulated GPUs.

The paper's evaluation hardware is an NVIDIA GTX Titan X (Maxwell).  Its cost
model (Section 7) depends on a handful of hardware constants; we capture the
full set needed by the timing and occupancy models in :class:`DeviceSpec` and
ship profiles for the paper's card plus two other generations so the cost
model can answer what-if questions ("where does the crossover move on a
V100?").

All bandwidth figures are in bytes per second, all sizes in bytes, times in
seconds, matching SI usage in the paper (251 GB/s global, 2.9 TB/s shared on
the Titan X Maxwell).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError

GB = 1_000_000_000
TB = 1_000_000_000_000
KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware parameters of a simulated GPU.

    Attributes mirror the parameters used by the paper's cost model plus the
    resource limits needed by the occupancy calculator:

    * ``global_bandwidth`` — B_G, achievable global memory bandwidth.
    * ``shared_bandwidth`` — B_S, aggregate shared memory bandwidth.
    * ``num_sms`` / ``cores_per_sm`` — compute geometry.
    * ``warp_size`` — threads per warp (32 on all NVIDIA parts).
    * ``shared_memory_per_block`` — the 48 KiB limit the paper hits with the
      per-thread heap algorithm at k >= 512.
    * ``registers_per_thread_limit`` — register budget before spilling to
      local memory (Appendix A).
    * ``kernel_launch_overhead`` — fixed cost per kernel launch; the paper's
      kernel-fusion optimization exists to amortize this plus intermediate
      global traffic.
    * ``atomic_op_cost`` — amortized cost of one global atomic; bucket
      select's histogram update uses atomics and is slower than radix
      select's warp-local counting because of it.
    """

    name: str
    global_bandwidth: float
    shared_bandwidth: float
    num_sms: int
    cores_per_sm: int
    warp_size: int = 32
    shared_memory_per_sm: int = 96 * KIB
    shared_memory_per_block: int = 48 * KIB
    shared_memory_banks: int = 32
    registers_per_sm: int = 65536
    registers_per_thread_limit: int = 255
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32
    global_memory_size: int = 12 * 1024 * MIB
    pcie_bandwidth: float = 12 * GB
    kernel_launch_overhead: float = 15e-6
    atomic_op_cost: float = 1.0e-9
    clock_hz: float = 1.0e9
    #: Fraction of peak global bandwidth real kernels achieve.  Section 7
    #: reports the first radix kernel at 9.8 ms against a predicted 8.6 ms,
    #: i.e. about 88% of peak.
    global_efficiency: float = 0.878
    #: Fraction of peak shared bandwidth real kernels achieve.  Section 7
    #: reports the SortReducer at 2.5 TB/s against the 2.9 TB/s peak.
    shared_efficiency: float = 0.862
    #: Simulated display-watchdog limit in seconds: a single kernel whose
    #: modeled time exceeds it is killed with KernelTimeoutError by the
    #: timing model (None — the default — disables the watchdog, keeping
    #: pre-existing behaviour byte-identical).
    watchdog_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.global_bandwidth <= 0 or self.shared_bandwidth <= 0:
            raise InvalidParameterError("bandwidths must be positive")
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise InvalidParameterError("warp_size must be a power of two")
        if self.shared_memory_banks <= 0:
            raise InvalidParameterError("shared_memory_banks must be positive")

    @property
    def total_cores(self) -> int:
        """Total CUDA-core count across all SMs."""
        return self.num_sms * self.cores_per_sm

    def global_read_time(self, num_bytes: float) -> float:
        """Seconds to stream ``num_bytes`` from global memory at B_G."""
        return num_bytes / self.global_bandwidth

    def shared_access_time(self, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` through shared memory at B_S."""
        return num_bytes / self.shared_bandwidth

    def pcie_transfer_time(self, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` over PCIe (host <-> device)."""
        return num_bytes / self.pcie_bandwidth


#: The paper's evaluation GPU (Section 6.1 / Section 7): B_S = 2.9 TB/s and
#: B_G = 251 GB/s are the empirically measured figures quoted in Section 7.
TITAN_X_MAXWELL = DeviceSpec(
    name="titan-x-maxwell",
    global_bandwidth=251 * GB,
    shared_bandwidth=2.9 * TB,
    num_sms=24,
    cores_per_sm=128,
    shared_memory_per_sm=96 * KIB,
    shared_memory_per_block=48 * KIB,
    global_memory_size=12 * 1024 * MIB,
    clock_hz=1.0e9,
)

#: A Pascal-generation profile for what-if analysis.
GTX_1080 = DeviceSpec(
    name="gtx-1080",
    global_bandwidth=320 * GB,
    shared_bandwidth=3.5 * TB,
    num_sms=20,
    cores_per_sm=128,
    global_memory_size=8 * 1024 * MIB,
    clock_hz=1.6e9,
)

#: A Volta-generation profile for what-if analysis.
V100 = DeviceSpec(
    name="v100",
    global_bandwidth=900 * GB,
    shared_bandwidth=13.8 * TB,
    num_sms=80,
    cores_per_sm=64,
    shared_memory_per_block=96 * KIB,
    global_memory_size=16 * 1024 * MIB,
    clock_hz=1.37e9,
)

_DEVICES = {spec.name: spec for spec in (TITAN_X_MAXWELL, GTX_1080, V100)}


def get_device(name: str = "titan-x-maxwell") -> DeviceSpec:
    """Look up a device profile by name.

    Raises :class:`InvalidParameterError` for unknown names, listing the
    available profiles in the message.
    """
    try:
        return _DEVICES[name]
    except KeyError:
        known = ", ".join(sorted(_DEVICES))
        raise InvalidParameterError(
            f"unknown device {name!r}; available: {known}"
        ) from None


def list_devices() -> list[str]:
    """Names of all registered device profiles."""
    return sorted(_DEVICES)


def register_device(spec: DeviceSpec) -> None:
    """Register a custom device profile (overwrites an existing name)."""
    _DEVICES[spec.name] = spec
