"""Micro SIMT executor.

Executes a kernel *functionally*, one Python generator per thread, with
cooperative ``__syncthreads()`` barriers (``yield``) — the smallest model
that preserves the two properties we need for validating the analytical
models:

* real data flow (kernels compute real answers, so correctness of the small
  bitonic kernels can be asserted against numpy), and
* faithful access auditing (bank conflicts / coalescing are measured from
  the actual addresses the kernel touches, via the epoch-alignment scheme
  in :mod:`repro.gpu.memory`).

It is intentionally small-scale: Python-per-thread execution is thousands of
times slower than hardware, so the large-n algorithm implementations in
:mod:`repro.algorithms` and :mod:`repro.bitonic` run vectorized instead and
derive their counters analytically.  Tests cross-check the two.

Kernel protocol
---------------

A kernel is a generator function ``kernel(ctx)`` where ``ctx`` is a
:class:`ThreadContext`.  ``yield`` is ``__syncthreads()``: every live thread
must reach it (a partial barrier raises :class:`SimulationError`, mirroring
the real deadlock).  Example::

    def reverse_kernel(ctx):
        value = ctx.shared.read(ctx.thread_id, ctx.thread_id)
        yield
        ctx.shared.write(ctx.thread_id, len(ctx.block) - 1 - ctx.thread_id, value)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from repro.errors import KernelTimeoutError, SimulationError
from repro.gpu.faults import fault_point
from repro.gpu.memory import GlobalMemory, SharedMemory
from repro.observability import active_metrics, span as obs_span


@dataclass
class ThreadContext:
    """Per-thread view handed to a kernel."""

    thread_id: int
    block: "ThreadBlock"

    @property
    def block_size(self) -> int:
        return self.block.num_threads

    @property
    def shared(self) -> SharedMemory:
        return self.block.shared

    @property
    def global_memory(self) -> GlobalMemory:
        if self.block.global_memory is None:
            raise SimulationError("kernel has no global memory bound")
        return self.block.global_memory

    # Convenience wrappers so kernels read naturally.
    def shared_read(self, address: int) -> float:
        return self.block.shared.read(self.thread_id, address)

    def shared_write(self, address: int, value: float) -> None:
        self.block.shared.write(self.thread_id, address, value)

    def global_read(self, address: int) -> float:
        return self.global_memory.read(self.thread_id, address)

    def global_write(self, address: int, value: float) -> None:
        self.global_memory.write(self.thread_id, address, value)


Kernel = Callable[[ThreadContext], Generator[None, None, None]]


class ThreadBlock:
    """One simulated thread block with its shared memory."""

    def __init__(
        self,
        num_threads: int,
        shared_words: int = 0,
        global_memory: GlobalMemory | None = None,
        num_banks: int = 32,
        warp_size: int = 32,
        watchdog_steps: int | None = None,
    ):
        if num_threads <= 0:
            raise SimulationError("a thread block needs at least one thread")
        if watchdog_steps is not None and watchdog_steps < 1:
            raise SimulationError("watchdog_steps must be at least 1")
        self.num_threads = num_threads
        self.warp_size = warp_size
        self.shared = SharedMemory(shared_words, num_banks, warp_size)
        self.global_memory = global_memory
        self.barriers_executed = 0
        #: Simulated watchdog: a kernel exceeding this many lockstep steps
        #: (barrier epochs) is killed with KernelTimeoutError, the way a
        #: display watchdog kills a runaway kernel.  None disables it.
        self.watchdog_steps = watchdog_steps

    def __len__(self) -> int:
        return self.num_threads

    def run(self, kernel: Kernel) -> None:
        """Execute ``kernel`` for every thread to completion.

        Threads advance in lockstep between barriers.  All threads must hit
        the same number of barriers; a thread finishing while others still
        wait at a barrier is the classic ``__syncthreads()`` divergence bug
        and raises :class:`SimulationError`.
        """
        with obs_span(
            "simt:block", category="simt", threads=self.num_threads
        ) as block_span:
            threads = [
                kernel(ThreadContext(tid, self)) for tid in range(self.num_threads)
            ]
            live = list(range(self.num_threads))
            while live:
                finished: list[int] = []
                waiting: list[int] = []
                for tid in live:
                    try:
                        next(threads[tid])
                        waiting.append(tid)
                    except StopIteration:
                        finished.append(tid)
                self._flush()
                if waiting and finished:
                    raise SimulationError(
                        f"barrier divergence: threads {waiting[:4]}... reached a "
                        f"barrier that threads {finished[:4]}... never will"
                    )
                if waiting:
                    self.barriers_executed += 1
                    # Simulated watchdog on SIMT step counts, plus a
                    # per-barrier fault-injection site.
                    fault_point("simt-barrier")
                    if (
                        self.watchdog_steps is not None
                        and self.barriers_executed > self.watchdog_steps
                    ):
                        raise KernelTimeoutError(
                            f"kernel exceeded the simulated watchdog limit of "
                            f"{self.watchdog_steps} steps",
                            site="simt-barrier",
                        )
                live = waiting
            block_span.set(barriers=self.barriers_executed)
            registry = active_metrics()
            if registry is not None:
                registry.counter("simt.blocks").inc()
                registry.counter("simt.barriers").inc(self.barriers_executed)
                registry.histogram("simt.threads_per_block").observe(
                    self.num_threads
                )

    def _flush(self) -> None:
        self.shared.flush_epoch()
        if self.global_memory is not None:
            self.global_memory.flush_epoch()


def run_grid(
    kernel_factory: Callable[[int], Kernel],
    num_blocks: int,
    threads_per_block: int,
    global_memory: GlobalMemory,
    shared_words: int = 0,
    watchdog_steps: int | None = None,
) -> list[ThreadBlock]:
    """Run a grid of blocks sequentially (blocks are independent on a GPU).

    ``kernel_factory(block_id)`` returns the kernel to run for that block.
    Returns the executed blocks so callers can inspect per-block statistics.
    """
    with obs_span(
        "simt:grid",
        category="simt",
        blocks=num_blocks,
        threads_per_block=threads_per_block,
    ):
        blocks = []
        for block_id in range(num_blocks):
            block = ThreadBlock(
                threads_per_block,
                shared_words=shared_words,
                global_memory=global_memory,
                watchdog_steps=watchdog_steps,
            )
            block.run(kernel_factory(block_id))
            blocks.append(block)
    return blocks
