"""Occupancy model.

Occupancy is the ratio of resident warps to the maximum the SM supports.
Kernels need enough resident warps to hide memory latency; when shared
memory or register usage limits residency, effective memory bandwidth
drops.  Two of the paper's observations hinge on this:

* The per-thread heap top-k keeps ``k`` keys per thread in shared memory,
  so occupancy collapses as k grows (the steep slope from k = 32 in
  Figure 11a) and the algorithm *fails outright* for k > 256 with 32-bit
  keys because one block would need more than 48 KiB (Section 4.1).
* Processing more than 16 elements per thread in bitonic top-k forces the
  compiler to cut occupancy via register pressure, which is why B = 16 is
  the sweet spot (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError, ResourceExhaustedError
from repro.gpu.device import DeviceSpec


@dataclass(frozen=True)
class BlockResources:
    """Per-thread-block resource usage of a kernel."""

    threads: int
    shared_memory_bytes: int = 0
    registers_per_thread: int = 32

    def __post_init__(self) -> None:
        if self.threads <= 0:
            raise InvalidParameterError("threads must be positive")
        if self.shared_memory_bytes < 0 or self.registers_per_thread < 0:
            raise InvalidParameterError("resource usage cannot be negative")


def blocks_per_sm(device: DeviceSpec, resources: BlockResources) -> int:
    """Resident blocks per SM under all three resource limits.

    Raises :class:`ResourceExhaustedError` if even a single block cannot be
    scheduled (the paper's per-thread top-k failure mode for k >= 512).
    """
    if resources.threads > device.max_threads_per_block:
        raise ResourceExhaustedError(
            f"block of {resources.threads} threads exceeds the device limit "
            f"of {device.max_threads_per_block}"
        )
    if resources.shared_memory_bytes > device.shared_memory_per_block:
        raise ResourceExhaustedError(
            f"block needs {resources.shared_memory_bytes} B of shared memory "
            f"but only {device.shared_memory_per_block} B is available per block"
        )
    limits = [device.max_blocks_per_sm, device.max_threads_per_sm // resources.threads]
    if resources.shared_memory_bytes > 0:
        limits.append(device.shared_memory_per_sm // resources.shared_memory_bytes)
    block_registers = resources.registers_per_thread * resources.threads
    if block_registers > 0:
        limits.append(device.registers_per_sm // block_registers)
    resident = min(limits)
    if resident < 1:
        raise ResourceExhaustedError(
            "kernel resource usage prevents any block from being resident"
        )
    return resident


def occupancy(device: DeviceSpec, resources: BlockResources) -> float:
    """Resident warps / maximum warps, in (0, 1]."""
    resident_blocks = blocks_per_sm(device, resources)
    warps_per_block = -(-resources.threads // device.warp_size)
    max_warps = device.max_threads_per_sm // device.warp_size
    return min(1.0, resident_blocks * warps_per_block / max_warps)


def bandwidth_derating(occupancy_value: float, saturation: float = 0.25) -> float:
    """Fraction of peak memory bandwidth achievable at a given occupancy.

    Memory bandwidth saturates once enough warps are in flight; below the
    saturation point achievable bandwidth falls roughly linearly (a standard
    simplification of the latency-hiding model).  ``saturation`` is the
    occupancy needed to reach peak — 0.25 (16 of 64 warps) matches the
    Maxwell-generation rule of thumb.
    """
    if not 0.0 < occupancy_value <= 1.0:
        raise InvalidParameterError("occupancy must be in (0, 1]")
    if occupancy_value >= saturation:
        return 1.0
    return occupancy_value / saturation


def register_spill_fraction(
    registers_needed: int, registers_available: int = 255
) -> float:
    """Fraction of a thread's private array that spills to local memory.

    Used by the Appendix A register-based per-thread top-k model: once the
    buffer no longer fits in registers, the spilled fraction lives in slow
    off-chip local memory.
    """
    if registers_needed <= 0:
        raise InvalidParameterError("registers_needed must be positive")
    if registers_needed <= registers_available:
        return 0.0
    return (registers_needed - registers_available) / registers_needed
